"""End-to-end: the unmodified protocol over real asyncio TCP.

Launches NodeHost OS processes, drives a mixed ENQUEUE/DEQUEUE workload
through :class:`SkueueClient`, and hands the collected history to the
same Definition-1 checker the simulators use.  Marked ``net`` (excluded
from tier-1; CI runs it in a dedicated job).
"""

from __future__ import annotations

import asyncio
import random

import pytest

from repro.core.requests import BOTTOM, INSERT, REMOVE
from repro.net.client import SkueueClient
from repro.net.launcher import launch_local
from repro.verify import check_queue_history

pytestmark = pytest.mark.net


def _run_mixed_workload(
    n_hosts: int,
    n_processes: int,
    ops: int,
    seed: int,
    enqueue_probability: float = 0.55,
):
    """Drive `ops` operations, wait, collect and verify the history."""

    async def scenario(deployment):
        rng = random.Random(f"tcp-e2e-{seed}")
        async with SkueueClient(deployment.host_map) as client:
            expected_items = {}
            enqueued = 0
            for i in range(ops):
                pid = rng.randrange(n_processes)
                if rng.random() < enqueue_probability or enqueued == 0:
                    req = await client.enqueue(pid, f"item-{i}")
                    expected_items[req] = f"item-{i}"
                    enqueued += 1
                else:
                    await client.dequeue(pid)
            await client.wait_all(timeout=120.0)
            records = await client.collect_records()
            return records, client, expected_items

    with launch_local(n_hosts, n_processes, seed=seed) as deployment:
        assert deployment.alive
        return asyncio.run(scenario(deployment))


def test_two_hosts_mixed_workload_is_sequentially_consistent():
    n_processes, ops = 8, 220
    records, client, _ = _run_mixed_workload(2, n_processes, ops, seed=1)

    assert len(records) == ops
    assert all(rec.completed for rec in records)
    # the history spans both hosts' shards
    assert {rec.pid % 2 for rec in records} == {0, 1}
    assert {rec.pid for rec in records} <= set(range(n_processes))
    check_queue_history(records)


def test_results_match_the_witness_order():
    n_processes, ops = 8, 200

    async def scenario(deployment):
        rng = random.Random("tcp-e2e-2")
        async with SkueueClient(deployment.host_map) as client:
            expected_items = {}
            for i in range(ops):
                pid = rng.randrange(n_processes)
                if rng.random() < 0.55 or not expected_items:
                    req = await client.enqueue(pid, f"item-{i}")
                    expected_items[req] = f"item-{i}"
                else:
                    await client.dequeue(pid)
            await client.wait_all(timeout=120.0)
            # drain phase: more dequeues than elements can remain, so at
            # least one ⊥ is guaranteed regardless of timing
            for _ in range(len(expected_items) + 1):
                await client.dequeue(rng.randrange(n_processes))
            await client.wait_all(timeout=120.0)
            return await client.collect_records(), client, expected_items

    with launch_local(2, n_processes, seed=2) as deployment:
        records, client, expected_items = asyncio.run(scenario(deployment))
    check_queue_history(records)

    # client-visible results agree with the collected history
    by_req = {rec.req_id: rec for rec in records}
    removals = [rec for rec in records if rec.kind == REMOVE]
    assert removals, "workload generated no dequeues"
    got_bottom = got_item = False
    for rec in removals:
        result = client.result_of(rec.req_id)
        if rec.result is BOTTOM:
            assert result is BOTTOM
            got_bottom = True
        else:
            enq_req, item = rec.result
            assert result == item
            assert by_req[enq_req].kind == INSERT
            assert expected_items[enq_req] == item
            got_item = True
    assert got_item, "no dequeue ever returned an element"
    assert got_bottom, "over-draining the queue must produce a BOTTOM"


def test_enqueues_complete_across_host_boundaries():
    # every insert's DHT node is effectively random, so with 3 hosts many
    # completions must traverse the COMPLETE-forwarding path
    records, client, expected = _run_mixed_workload(3, 9, 120, seed=3,
                                                    enqueue_probability=1.0)
    check_queue_history(records)
    assert len(records) == 120
    assert all(rec.kind == INSERT and rec.completed for rec in records)
    assert all(client.result_of(req) is True for req in expected)


@pytest.mark.slow
def test_larger_deployment_long_workload():
    records, _, _ = _run_mixed_workload(4, 16, 600, seed=4)
    assert len(records) == 600
    check_queue_history(records)
