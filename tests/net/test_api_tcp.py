"""The handle-based public API over the real TCP deployment.

The point of these tests is *portability*: the very same workload
helper that tests the sim backends (``tests/conftest.py``,
``run_uniform_workload``) drives a multi-OS-process deployment here.
Marked ``net`` (excluded from tier-1; CI runs it in the net job).
"""

from __future__ import annotations

import asyncio

import pytest

from repro import BOTTOM
from repro.api import connect
from repro.net.launcher import launch_local
from tests.conftest import run_priority_workload, run_uniform_workload

pytestmark = pytest.mark.net


def test_uniform_workload_runs_unmodified_on_every_backend():
    histories = {}
    for backend in ("sync", "async", "tcp"):
        with connect(backend, n_processes=8, seed=21) as session:
            handles, records = run_uniform_workload(session, ops=40, seed=21)
            histories[backend] = len(records)
    # same script, same op count, three execution substrates
    assert histories["sync"] == histories["async"] == histories["tcp"] == 40


def test_priority_workload_runs_unmodified_on_every_backend():
    # the Skeap acceptance scenario: one mixed-priority script, three
    # execution substrates, each history priority-verified
    histories = {}
    for backend in ("sync", "async", "tcp"):
        with connect(
            backend, structure="heap", n_processes=8, seed=22, n_priorities=3
        ) as session:
            handles, records = run_priority_workload(session, ops=40, seed=22)
            histories[backend] = len(records)
    assert histories["sync"] == histories["async"] == histories["tcp"] == 40


def test_tcp_kwargs_only_apply_to_tcp():
    # n_hosts is a tcp kwarg; sim backends must reject it loudly rather
    # than silently absorb it
    with pytest.raises(TypeError):
        connect("sync", n_hosts=2)


def test_batch_pipelining_and_fifo_per_pid_over_tcp():
    n = 8
    with connect("tcp", n_processes=4, seed=5, n_hosts=2) as queue:
        handles = queue.submit_batch(
            [("enqueue", f"x{i}", 1) for i in range(n)] + [("dequeue", 1)] * n
        )
        queue.drain()
        assert [h.result() for h in handles[n:]] == [f"x{i}" for i in range(n)]
        queue.verify()


def test_handles_awaitable_from_callers_event_loop():
    with connect("tcp", n_processes=4, seed=6, n_hosts=2) as queue:

        async def go():
            put = queue.enqueue("via-await", pid=0)
            got = queue.dequeue(pid=0)
            assert (await put) is True
            return await got

        assert asyncio.run(go()) == "via-await"


def test_stack_structure_over_tcp():
    with connect("tcp", structure="stack", n_processes=4, seed=7,
                 n_hosts=2) as stack:
        stack.push("a", pid=0)
        stack.push("b", pid=0)
        stack.drain()
        top = stack.pop(pid=0)
        assert top.result() == "b"
        stack.drain()
        records = stack.verify()
        assert len(records) == 3

        # a structure-mismatched session attaching to the same
        # deployment is rejected during the handshake
        with pytest.raises(ValueError):
            connect("tcp", structure="queue", deployment=stack.backend.deployment)


def test_heap_structure_over_tcp():
    with connect("tcp", structure="heap", n_processes=4, seed=7,
                 n_hosts=2, n_priorities=3) as heap:
        heap.insert("bulk", priority=2, pid=0)
        heap.insert("urgent", priority=0, pid=0)
        heap.drain()
        first = heap.delete_min(pid=1)
        assert first.result() == "urgent"
        second = heap.delete_min(pid=2)
        assert second.result() == "bulk"
        assert heap.delete_min(pid=3).result() is BOTTOM
        records = heap.verify()
        assert len(records) == 5
        # priorities survive the collect round-trip
        assert {rec.priority for rec in records if rec.kind == 0} == {0, 2}

        # a structure-mismatched session attaching to the same
        # deployment is rejected during the handshake
        with pytest.raises(ValueError):
            connect("tcp", structure="queue", deployment=heap.backend.deployment)


def test_partial_host_map_is_reconciled_at_connect():
    # the welcome frame carries the authoritative cluster map: a partial
    # host_map is only a *seed* — the client discovers and connects to
    # the remaining hosts itself instead of mis-sharding (or, as before
    # live membership, refusing outright)
    with launch_local(2, 4, seed=9) as deployment:
        partial = {0: deployment.host_map[0]}
        with connect("tcp", host_map=partial) as queue:
            handles = [queue.enqueue(f"item-{i}") for i in range(8)]
            queue.drain()
            assert all(handle.result() is True for handle in handles)
            records = queue.verify()
            # submissions really spanned both hosts' pids
            assert len(records) == 8
            assert {rec.pid % 2 for rec in records} == {0, 1}


def test_zero_timeout_polls_instead_of_blocking():
    # round_seconds=0.1 makes completion take several hundred ms, so the
    # immediate poll below cannot race the protocol even on a loaded box
    with connect("tcp", n_processes=4, seed=10, n_hosts=2,
                 round_seconds=0.1) as queue:
        handle = queue.enqueue("x", pid=0)
        # an explicit zero timeout must poll, not fall back to the 60s
        # backend default — and raise the *builtin* TimeoutError
        with pytest.raises(TimeoutError):
            handle.result(timeout=0)
        assert handle.result() is True  # still awaitable afterwards


def test_result_of_unknown_and_drain_semantics():
    with connect("tcp", n_processes=4, seed=8, n_hosts=2) as queue:
        with pytest.raises(KeyError):
            queue.result_of(987654321)
        handles = [queue.enqueue(i) for i in range(6)]
        queue.drain()
        assert all(h.done() for h in handles)
        assert queue.dequeue(pid=2).result() in (BOTTOM, *range(6))
