"""Live membership over TCP: hosts join and drain under client load.

The scenarios this suite pins down are the ones PR 1 left open ("TCP
membership churn is still sim-only"):

* a brand-new OS process joins a running deployment (``skueue-node
  join`` via :meth:`NetDeployment.add_host`) and its fresh pids take
  real traffic,
* a live host drains out (:meth:`NetDeployment.remove_host`): its
  virtual nodes depart through the paper's LEAVE/update machinery, its
  unflushed requests are adopted by surviving nodes, its record archive
  moves to the coordinator — and the *merged* history, collected after
  the host's OS process is gone, still passes the Definition-1 checker,
* both at once, with several concurrent API sessions submitting
  throughout (the acceptance scenario: >=2 joins and >=2 leaves
  mid-workload).

Marked ``net`` (excluded from tier-1; CI runs a dedicated net-churn
step).
"""

from __future__ import annotations

import asyncio
import random
import threading
from concurrent.futures import ThreadPoolExecutor

import pytest

from repro.api import connect
from repro.net.client import SkueueClient
from repro.net.launcher import launch_local
from repro.verify import check_heap_history, check_queue_history

pytestmark = pytest.mark.net


async def _drive_load(
    client: SkueueClient, stop: asyncio.Event, tag: str, max_ops: int = 5000
):
    """Submit mixed ops over the live pid set until told to stop.

    ``max_ops`` bounds the backlog: a drain only finishes once every
    record originated at the draining host completed, so an unbounded
    firehose would stretch the test far past what CI tolerates without
    making the scenario any more adversarial.
    """
    rng = random.Random(tag)
    submitted = 0
    enqueued = 0
    while not stop.is_set() and submitted < max_ops:
        pids = client.live_pids()
        pid = pids[rng.randrange(len(pids))]
        if rng.random() < 0.6 or enqueued == 0:
            await client.enqueue(pid, f"{tag}-item-{submitted}")
            enqueued += 1
        else:
            await client.dequeue(pid)
        submitted += 1
        await asyncio.sleep(0.002)
    return submitted


def test_host_join_under_load_serves_fresh_pids():
    with launch_local(2, 4, seed=41, id_slots=16) as deployment:

        async def scenario():
            async with SkueueClient(deployment.host_map) as client:
                stop = asyncio.Event()
                load = asyncio.create_task(_drive_load(client, stop, "join-41"))
                loop = asyncio.get_running_loop()
                new_index = await loop.run_in_executor(
                    None, lambda: deployment.add_host(2)
                )
                # keep submitting a little with the enlarged pid set
                await asyncio.sleep(0.5)
                stop.set()
                submitted = await load
                await client.wait_all(timeout=120.0)
                records = await client.collect_records()
                return new_index, submitted, records, dict(client.cluster.pid_owner)

        new_index, submitted, records, pid_owner = asyncio.run(scenario())

    assert new_index == 2  # genesis hosts 0..1, first join gets index 2
    new_pids = [pid for pid, owner in pid_owner.items() if owner == new_index]
    assert len(new_pids) == 2 and min(new_pids) >= 4  # fresh, never recycled
    assert len(records) == submitted
    assert all(rec.completed for rec in records)
    # the joined host's pids really served operations
    assert {rec.pid for rec in records} & set(new_pids)
    check_queue_history(records)


def test_host_leave_under_load_keeps_history_complete():
    with launch_local(3, 6, seed=42, id_slots=16) as deployment:

        async def scenario():
            async with SkueueClient(deployment.host_map) as client:
                stop = asyncio.Event()
                load = asyncio.create_task(_drive_load(client, stop, "leave-42"))
                loop = asyncio.get_running_loop()
                # some traffic lands on host 1's pids before it drains
                await asyncio.sleep(0.5)
                await loop.run_in_executor(
                    None, lambda: deployment.remove_host(1, timeout=120.0)
                )
                stop.set()
                submitted = await load
                await client.wait_all(timeout=120.0)
                # collected *after* host 1's OS process retired: its records
                # must come back anyway (the coordinator adopted them)
                records = await client.collect_records()
                return submitted, records

        submitted, records = asyncio.run(scenario())
        cluster = deployment.cluster_map()

    assert 1 not in cluster.hosts
    assert cluster.departed.get(1) == 0  # coordinator adopted the archive
    assert all(owner != 1 for owner in cluster.pid_owner.values())
    assert len(records) == submitted
    assert all(rec.completed for rec in records)
    # pids of the drained host appear in the merged history
    assert {rec.pid for rec in records} & {1, 4}
    check_queue_history(records)


async def _drive_heap_load(
    client: SkueueClient,
    stop: asyncio.Event,
    tag: str,
    n_priorities: int = 3,
    max_ops: int = 5000,
):
    """Mixed-priority heap ops over the live pid set until told to stop."""
    rng = random.Random(tag)
    submitted = 0
    inserted = 0
    while not stop.is_set() and submitted < max_ops:
        pids = client.live_pids()
        pid = pids[rng.randrange(len(pids))]
        if rng.random() < 0.6 or inserted == 0:
            await client.insert(
                pid, f"{tag}-item-{submitted}",
                priority=rng.randrange(n_priorities),
            )
            inserted += 1
        else:
            await client.delete_min(pid)
        submitted += 1
        await asyncio.sleep(0.002)
    return submitted


def test_heap_join_and_drain_under_load():
    """The Skeap churn acceptance case: a host joins *and* a host drains
    while mixed-priority traffic flows; the merged history — collected
    after the drained host's OS process is gone — passes the extended
    seqcons verifier."""
    with launch_local(
        2, 4, seed=45, id_slots=16, structure="heap", n_priorities=3
    ) as deployment:

        async def scenario():
            async with SkueueClient(deployment.host_map) as client:
                stop = asyncio.Event()
                load = asyncio.create_task(
                    _drive_heap_load(client, stop, "heap-churn-45")
                )
                loop = asyncio.get_running_loop()
                new_index = await loop.run_in_executor(
                    None, lambda: deployment.add_host(2)
                )
                # traffic spreads onto the joined host's fresh pids, then
                # host 1 drains back out under the same load
                await asyncio.sleep(0.5)
                await loop.run_in_executor(
                    None, lambda: deployment.remove_host(1, timeout=120.0)
                )
                stop.set()
                submitted = await load
                await client.wait_all(timeout=120.0)
                records = await client.collect_records()
                return new_index, submitted, records

        new_index, submitted, records = asyncio.run(scenario())
        cluster = deployment.cluster_map()

    assert new_index == 2
    assert 1 not in cluster.hosts
    assert all(owner != 1 for owner in cluster.pid_owner.values())
    assert len(records) == submitted
    assert all(rec.completed for rec in records)
    # inserts kept their classes across the wire and the churn
    assert {rec.priority for rec in records if rec.kind == 0} == {0, 1, 2}
    # pids of both the joined and the drained host saw traffic
    pids_seen = {rec.pid for rec in records}
    assert {pid for pid, owner in cluster.pid_owner.items() if owner == 2} & pids_seen
    assert {1, 3} & pids_seen  # genesis pids of the drained host
    check_heap_history(records)


def test_churn_under_load_three_sessions_two_joins_two_leaves():
    """Acceptance: 4-host cluster, 3 concurrent API sessions, >=2 joins
    and >=2 leaves mid-workload, merged history Definition-1 clean."""
    with launch_local(4, 8, seed=43, id_slots=16) as deployment:
        sessions = [connect("tcp", deployment=deployment) for _ in range(3)]
        stop = threading.Event()

        def drive(worker: int) -> int:
            session = sessions[worker]
            rng = random.Random(f"churn-{worker}")
            submitted = 0
            enqueued = 0
            # bounded firehose: see _drive_load on why max_ops matters
            while not stop.is_set() and submitted < 4000:
                if rng.random() < 0.6 or enqueued == 0:
                    session.enqueue(f"s{worker}-item-{submitted}")
                    enqueued += 1
                else:
                    session.dequeue()
                submitted += 1
                stop.wait(0.002)
            session.drain(timeout=180.0)
            return submitted

        try:
            with ThreadPoolExecutor(max_workers=3) as pool:
                futures = [pool.submit(drive, worker) for worker in range(3)]
                joined = []
                try:
                    for round_no in range(2):
                        joined.append(deployment.add_host(2))
                        victim = 1 + round_no  # never the coordinator (0)
                        deployment.remove_host(victim, timeout=150.0)
                finally:
                    stop.set()
                counts = [future.result(timeout=240.0) for future in futures]

            assert joined == [4, 5]
            cluster = deployment.cluster_map()
            assert set(cluster.hosts) == {0, 3, 4, 5}
            assert cluster.departed == {1: 0, 2: 0}

            # one collect sees the merged three-session history across all
            # surviving hosts (including both retirees' adopted archives)
            records = sessions[0].verify()
            assert len(records) == sum(counts)
            assert all(rec.completed for rec in records)
            # traffic reached the first joined host's pids (the second
            # joined near the end of the bounded workload, so its pids
            # may legitimately have seen no ops) and both retirees' pids
            pids_seen = {rec.pid for rec in records}
            first_joined_pids = {
                pid for pid, owner in cluster.pid_owner.items() if owner == 4
            }
            assert first_joined_pids <= pids_seen
            assert {1, 2} <= pids_seen  # genesis pids of the drained hosts
        finally:
            for session in sessions:
                session.close()


@pytest.mark.slow
def test_repeated_churn_long_workload():
    """Three churn rounds back to back on a bigger deployment."""
    with launch_local(3, 9, seed=44, id_slots=24) as deployment:

        async def scenario():
            async with SkueueClient(deployment.host_map) as client:
                stop = asyncio.Event()
                load = asyncio.create_task(_drive_load(client, stop, "long-44"))
                loop = asyncio.get_running_loop()
                victims = [1, 2, 3]
                for round_no in range(3):
                    await loop.run_in_executor(
                        None, lambda: deployment.add_host(1)
                    )
                    await loop.run_in_executor(
                        None,
                        lambda v=victims[round_no]: deployment.remove_host(
                            v, timeout=150.0
                        ),
                    )
                stop.set()
                submitted = await load
                await client.wait_all(timeout=180.0)
                records = await client.collect_records()
                return submitted, records

        submitted, records = asyncio.run(scenario())

    assert len(records) == submitted
    assert all(rec.completed for rec in records)
    check_queue_history(records)
