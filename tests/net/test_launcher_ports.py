"""Port selection: ephemeral by default, EADDRINUSE-tolerant when fixed.

Parallel CI net jobs used to be able to flake if anything pinned a port;
the rule is now: hosts bind port 0 unless told otherwise (the kernel
guarantees a free port, reported via READY/cluster map), and a *fixed*
port that turns out busy is retried briefly and then falls back to an
ephemeral one rather than crashing the host.  Marked ``net`` (binds real
sockets).
"""

from __future__ import annotations

import asyncio
import socket

import pytest

from repro.net.launcher import launch_local
from repro.net.server import HostConfig, NodeHost

pytestmark = pytest.mark.net


def _occupied_port() -> tuple[socket.socket, int]:
    blocker = socket.socket()
    blocker.bind(("127.0.0.1", 0))
    blocker.listen(1)
    return blocker, blocker.getsockname()[1]


def test_fixed_busy_port_falls_back_to_ephemeral():
    blocker, busy_port = _occupied_port()
    try:
        async def scenario():
            host = NodeHost(
                HostConfig(host_index=0, n_hosts=1, n_processes=1,
                           port=busy_port)
            )
            try:
                return await host.start()
            finally:
                host.stop()
                await host.wait_stopped()

        port = asyncio.run(scenario())
        assert port != busy_port
        assert port > 0
    finally:
        blocker.close()


def test_ephemeral_port_zero_never_collides():
    async def scenario():
        hosts = [
            NodeHost(HostConfig(host_index=i, n_hosts=4, n_processes=4))
            for i in range(4)
        ]
        try:
            return [await host.start() for host in hosts]
        finally:
            for host in hosts:
                host.stop()
            for host in hosts:
                await host.wait_stopped()

    ports = asyncio.run(scenario())
    assert len(set(ports)) == 4


def test_parallel_deployments_coexist():
    # two deployments launched side by side: the kernel hands out
    # disjoint ephemeral ports, so neither wire-up can interfere
    with launch_local(2, 4, seed=71) as one:
        with launch_local(2, 4, seed=72) as two:
            assert one.alive and two.alive
            ports_one = {addr[1] for addr in one.host_map.values()}
            ports_two = {addr[1] for addr in two.host_map.values()}
            assert not ports_one & ports_two
