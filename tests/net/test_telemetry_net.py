"""Telemetry over a live deployment: /metrics, traces, top, profiling.

Launches real NodeHost processes (marked ``net``, excluded from tier-1)
and exercises every operator surface the telemetry plane adds: the
Prometheus ``/metrics`` route, the wire-tagged trace plumbing end to
end (client draw -> hop stamps on transit hosts -> merged Chrome
export), ``skueue-ops top/trace``, and the ``SKUEUE_PROFILE`` launcher
hook writing per-host .prof files.
"""

from __future__ import annotations

import asyncio
import json
import urllib.request

import pytest

from repro.net.client import SkueueClient
from repro.net.launcher import launch_local
from repro.ops import cli
from repro.telemetry import validate_chrome_trace

pytestmark = pytest.mark.net

#: series the CI smoke step (and any dashboard) may rely on existing
CORE_SERIES = (
    "skueue_frames_total",
    "skueue_bytes_total",
    "skueue_connections",
    "skueue_actors",
    "skueue_records_local",
    "skueue_ops_generated_total",
    "skueue_ops_completed_total",
    "skueue_ops_pending",
    # wave-liveness escape hatch (A_NUDGE path): registered from
    # startup so a healthy deployment scrapes them at 0 and a stuck
    # one shows the hatch tripping
    "skueue_wave_nudge_probes_total",
    "skueue_wave_force_fires_total",
)


def _drive(host_map, ops: int = 60, trace_sample: float | None = None):
    async def scenario():
        kwargs = {} if trace_sample is None else {"trace_sample": trace_sample}
        async with SkueueClient(host_map, **kwargs) as client:
            for i in range(ops // 2):
                await client.enqueue(i % 8, i)
            for i in range(ops // 2):
                await client.dequeue(i % 8)
            await client.wait_all(timeout=120.0)
            return await client.host_telemetry()

    return asyncio.run(scenario())


def _http(address, path: str) -> str:
    url = f"http://{address[0]}:{address[1]}{path}"
    with urllib.request.urlopen(url, timeout=10.0) as response:
        return response.read().decode()


class TestLiveTelemetry:
    @pytest.fixture(scope="class")
    def deployment(self):
        with launch_local(3, 8, seed=11, trace_sample=1.0,
                          trace_slow_ms=0.0) as dep:
            telemetry = _drive(dep.host_map)
            ops_addresses = cli._ops_addresses(
                next(iter(dep.host_map.values()))
            )
            yield dep, telemetry, ops_addresses

    def test_metrics_route_serves_core_series(self, deployment):
        dep, _, ops_addresses = deployment
        assert len(ops_addresses) == 3
        for index, address in ops_addresses.items():
            text = _http(address, "/metrics")
            for series in CORE_SERIES:
                assert f"\n{series}" in text or text.startswith(series), (
                    f"host {index} /metrics lacks {series}"
                )
            # histogram families render full bucket/sum/count triplets
            assert "skueue_write_batch_frames_bucket" in text
            assert "# TYPE skueue_frames_total counter" in text

    def test_client_adopts_deployment_trace_rate(self, deployment):
        dep, telemetry, _ = deployment
        # hosts advertised trace_sample=1.0; the fixture client sampled
        # every op, so every host finished spans with full lifecycles
        total = sum(
            data["phases"]["total"]["count"] for data in telemetry.values()
        )
        assert total >= 50
        for data in telemetry.values():
            sampled = data["phases"]["sampled"]
            assert sampled["rate"] == 1.0
            assert sampled["finished"] > 0

    def test_phase_histograms_attribute_the_lifecycle(self, deployment):
        _, telemetry, _ = deployment
        for host, data in telemetry.items():
            phases = data["phases"]
            for phase in ("buffer", "wave", "deliver"):
                if phases[phase]["count"]:
                    assert phases[phase]["p99"] >= phases[phase]["p50"] >= 0
            assert phases["hops"]["count"] > 0, f"host {host} stamped no hops"

    def test_registry_snapshot_rides_the_metrics_frame(self, deployment):
        _, telemetry, _ = deployment
        for data in telemetry.values():
            registry = data["registry"]
            assert registry["skueue_frames_total"]['{direction="in"}'] > 0
            assert '{direction="out"}' in registry["skueue_bytes_total"]

    def test_trace_route_and_flight_recorder(self, deployment):
        _, _, ops_addresses = deployment
        address = next(iter(ops_addresses.values()))
        export = json.loads(_http(address, "/trace"))
        assert validate_chrome_trace(export) == []
        assert export["traceEvents"]
        recent = json.loads(_http(address, "/trace?recent=1"))["recent"]
        assert recent and all("phases_ms" in r for r in recent)
        # lifecycle records carry real (nonzero) durations
        assert all(r["dur_ms"] > 0 for r in recent)
        record = json.loads(_http(address, f"/trace?req={recent[-1]['req']}"))
        assert record["req"] == recent[-1]["req"]

    def test_ops_top_once_renders_every_host(self, deployment, capsys):
        dep, _, _ = deployment
        host, port = next(iter(dep.host_map.values()))
        assert cli.main(["top", "--seed", f"{host}:{port}", "--once"]) == 0
        out = capsys.readouterr().out
        assert "ops/s" in out and "pend" in out
        for index in range(3):
            assert f"\n{index:>4} " in out

    def test_ops_trace_merges_all_host_lanes(self, deployment, tmp_path,
                                             capsys):
        dep, _, _ = deployment
        host, port = next(iter(dep.host_map.values()))
        out_file = tmp_path / "trace.json"
        assert cli.main(["trace", "--seed", f"{host}:{port}",
                         "--out", str(out_file)]) == 0
        capsys.readouterr()
        merged = json.loads(out_file.read_text())
        assert validate_chrome_trace(merged) == []
        lanes = {event["pid"] for event in merged["traceEvents"]}
        assert lanes == {0, 1, 2}
        assert [h["host"] for h in merged["otherData"]["hosts"]] == [0, 1, 2]

    def test_profile_route_captures_the_event_loop(self, deployment):
        _, _, ops_addresses = deployment
        address = next(iter(ops_addresses.values()))
        text = _http(address, "/profile?seconds=0.2&top=5")
        assert "function calls" in text


class TestTraceSampling:
    def test_explicit_client_rate_overrides_deployment(self):
        # deployment off, client samples everything: spans still flow,
        # because hosts honor the wire tag at any configured rate
        with launch_local(2, 8, seed=5) as dep:
            telemetry = _drive(dep.host_map, ops=40, trace_sample=1.0)
        finished = sum(
            d["phases"]["sampled"]["finished"] for d in telemetry.values()
        )
        assert finished > 0

    def test_untraced_deployment_keeps_tracer_idle(self):
        with launch_local(2, 8, seed=6) as dep:
            telemetry = _drive(dep.host_map, ops=40)
        for data in telemetry.values():
            sampled = data["phases"]["sampled"]
            assert sampled["started"] == 0
            assert data["phases"]["total"]["count"] == 0


class TestProfileLauncherHook:
    def test_skueue_profile_writes_per_host_prof_files(self, tmp_path,
                                                       monkeypatch):
        prefix = tmp_path / "run"
        monkeypatch.setenv("SKUEUE_PROFILE", str(prefix))
        with launch_local(2, 8, seed=9) as dep:
            _drive(dep.host_map, ops=20)
        # orderly shutdown ran each host's profiler dump
        import pstats

        for index in range(2):
            path = tmp_path / f"run-host{index}.prof"
            assert path.exists(), f"host {index} wrote no profile"
            stats = pstats.Stats(str(path))
            assert stats.total_calls > 0
