"""Codec parity properties: every frame in the catalogue must decode to
the *same* message whether it rode the JSON or the binary wire, and
garbage bytes behind a valid header must be rejected without losing
frame sync (so a connection survives a poisoned frame).

``SAMPLE_FRAMES`` is diff-tested against ``transport.FRAME_TYPES``:
adding a frame op without a parity sample here fails the suite.
"""

from __future__ import annotations

import struct

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.requests import BOTTOM, INSERT, REMOVE, OpRecord
from repro.net import transport
from repro.net.transport import (
    CODEC_BINARY,
    CODEC_JSON,
    CODEC_TAGS,
    WIRE_CODECS,
    FrameDecodeError,
    FrameError,
    FrameReader,
    codec_for,
    decode_frame_body,
    decode_payload,
    encode_frame,
    encode_payload,
    negotiate_codec,
    record_from_wire,
    record_to_wire,
)

_HEADER = struct.Struct(">I")


def _record_wire(req_id: int = 17, *, result: object = BOTTOM) -> dict:
    """A fully-populated OpRecord in wire form (nested payload tags)."""
    rec = OpRecord(req_id, 3, 2, INSERT, ("payload", req_id), 4.0, priority=1)
    rec.value = 9
    rec.result = result
    rec.completed = True
    return record_to_wire(rec)


#: one representative body per catalogued frame type, shaped like the
#: frames the runtime actually builds (see server.py / client.py)
SAMPLE_FRAMES: dict[str, dict] = {
    # bootstrap / control plane
    "wire": {"op": "wire", "peers": {"0": ["127.0.0.1", 9001]},
             "map": {"version": 1, "hosts": {"0": [0, 1]}}},
    "wired": {"op": "wired", "host": 0},
    "ping": {"op": "ping"},
    "pong": {"op": "pong", "host": 1, "wired": True, "joining": False,
             "draining": False},
    "shutdown": {"op": "shutdown"},
    "bye": {"op": "bye", "host": 2},
    "error": {"op": "error", "message": "unknown op 'zap'"},
    # host <-> host data plane
    "msg": {"op": "msg", "dest": 5, "action": "anchor", "gen": 3.5,
            "src": 1, "seq": 42,
            "payload": encode_payload((17, ("item", 2), BOTTOM))},
    "complete": {"op": "complete", "req": 17, "src": 0, "seq": 7,
                 "value": 9, "result": encode_payload(BOTTOM)},
    "batch": {"op": "batch", "frames": [
        {"op": "heartbeat", "host": 0, "src": 0, "seq": 1},
        {"op": "complete", "req": 3, "src": 0, "seq": 2, "value": 1},
    ]},
    # client session
    "hello": {"op": "hello", "codecs": list(WIRE_CODECS)},
    "welcome": {"op": "welcome", "nonce": 3, "id_slots": 8,
                "codec": CODEC_BINARY, "map": {"version": 1}},
    "submit": {"op": "submit", "req": 1025, "pid": 3, "kind": INSERT,
               "item": encode_payload(("elem", 0)), "pri": 2},
    "submit_batch": {"op": "submit_batch", "subs": [
        [1025, 3, INSERT, encode_payload(("elem", 0)), 0],
        [1026, 4, REMOVE, None, 0],
    ]},
    "done": {"op": "done", "req": 1025, "kind": REMOVE,
             "result": encode_payload(BOTTOM)},
    "done_batch": {"op": "done_batch", "dones": [
        [1025, INSERT, None],
        [1026, REMOVE, encode_payload(("elem", 0))],
    ]},
    "rejected": {"op": "rejected", "req": 1025, "reason": "draining"},
    "collect": {"op": "collect"},
    "records": {"op": "records", "records": [_record_wire(17),
                                             _record_wire(18, result=None)],
                "errors": []},
    "metrics": {"op": "metrics", "rounds": 12, "messages": 340,
                "per_wave": {"anchor": 3.0}},
    # live membership
    "join": {"op": "join", "pids": 2},
    "join_ok": {"op": "join_ok", "host": 3, "pids": [6, 7],
                "config": {"codec": CODEC_BINARY, "coalesce": True}},
    "join_commit": {"op": "join_commit", "host": 3,
                    "address": ["127.0.0.1", 9004]},
    "join_done": {"op": "join_done", "host": 3},
    "leave": {"op": "leave", "host": 2},
    "leaving": {"op": "leaving", "host": 2},
    "forwards": {"op": "forwards", "host": 2,
                 "forwards": {"11": 0, "12": 1}},
    "retire": {"op": "retire", "host": 2, "records": [_record_wire(21)],
               "forwards": {"11": 0}},
    "retired": {"op": "retired", "host": 2},
    "map": {"op": "map"},
    "host_map": {"op": "host_map", "map": {"version": 2,
                                           "hosts": {"0": [0, 1]}}},
    "update_over": {"op": "update_over", "epoch": 4, "members": [0, 1, 3]},
    # crash-stop fault tolerance + ops plane
    "heartbeat": {"op": "heartbeat", "host": 1, "src": 1, "seq": 99},
    "suspect": {"op": "suspect", "host": 2, "silent": 1.25},
    "evict": {"op": "evict", "host": 2, "epoch": 5},
    "recover_dump": {"op": "recover_dump", "host": 1,
                     "records": [_record_wire(30)]},
    "rebuild": {"op": "rebuild", "epoch": 5,
                "records": [_record_wire(30)], "plan": {"2": 0}},
    "replica_put": {"op": "replica_put", "req": 30, "src": 1, "seq": 4,
                    "facts": {"value": 3, "completed": True}},
    "replica_ack": {"op": "replica_ack", "req": 30},
    "health": {"op": "health", "host": 0, "live": [0, 1], "epoch": 5},
}


class TestFrameParity:
    def test_samples_cover_the_whole_catalogue(self):
        assert set(SAMPLE_FRAMES) == set(transport.FRAME_TYPES)

    @pytest.mark.parametrize("op", sorted(SAMPLE_FRAMES))
    @pytest.mark.parametrize("codec", sorted(WIRE_CODECS))
    def test_every_frame_round_trips_on_both_codecs(self, op, codec):
        frame = SAMPLE_FRAMES[op]
        reader = FrameReader()
        (decoded,) = list(reader.feed(encode_frame(frame, codec)))
        assert decoded == frame
        assert reader.buffered == 0

    @pytest.mark.parametrize("op", sorted(SAMPLE_FRAMES))
    def test_json_and_binary_decode_identically(self, op):
        frame = SAMPLE_FRAMES[op]
        per_codec = {
            codec: decode_frame_body(
                CODEC_TAGS[codec],
                encode_frame(frame, codec)[_HEADER.size:],
            )
            for codec in WIRE_CODECS
        }
        assert per_codec[CODEC_JSON] == per_codec[CODEC_BINARY] == frame

    def test_codecs_interleave_on_one_stream(self):
        reader = FrameReader()
        blob = b"".join(
            encode_frame(SAMPLE_FRAMES[op], codec)
            for op in ("ping", "msg", "records")
            for codec in (CODEC_JSON, CODEC_BINARY)
        )
        # arbitrary packet boundaries: feed one byte at a time
        decoded = [msg for i in range(len(blob))
                   for msg in reader.feed(blob[i:i + 1])]
        assert decoded == [SAMPLE_FRAMES[op]
                           for op in ("ping", "msg", "records")
                           for _ in WIRE_CODECS]

    def test_nested_records_survive_both_codecs(self):
        frame = SAMPLE_FRAMES["records"]
        for codec in WIRE_CODECS:
            (decoded,) = list(FrameReader().feed(encode_frame(frame, codec)))
            rec = record_from_wire(decoded["records"][0])
            assert rec.item == ("payload", 17)
            assert rec.result is BOTTOM
            assert rec.priority == 1 and rec.completed

    def test_bulk_ops_pin_json_regardless_of_negotiation(self):
        for op in sorted(transport.BULK_OPS):
            assert codec_for({"op": op}, CODEC_BINARY) == CODEC_JSON
        assert codec_for({"op": "msg"}, CODEC_BINARY) == CODEC_BINARY
        assert codec_for({"op": "msg"}, CODEC_JSON) == CODEC_JSON

    def test_negotiation_falls_back_to_json(self):
        assert negotiate_codec(["binary", "json"], "binary") == "binary"
        assert negotiate_codec(["json"], "binary") == "json"
        assert negotiate_codec(None, "binary") == "json"  # legacy hello
        assert negotiate_codec(["exotic"], "binary") == "json"


class TestTraceFieldParity:
    """The optional ``tr`` trace tag (docs/PROTOCOL.md, "Telemetry")
    must round-trip on every hot frame that can carry it, on both
    codecs — and its absence (a legacy peer) must stay decodable."""

    HOT = ("msg", "complete", "done", "submit")

    @pytest.mark.parametrize("op", HOT)
    @pytest.mark.parametrize("codec", sorted(WIRE_CODECS))
    def test_tr_round_trips_on_every_hot_frame(self, op, codec):
        frame = dict(SAMPLE_FRAMES[op])
        frame["tr"] = 12884901888  # a real (host 3) req_id: > 2**32
        (decoded,) = list(FrameReader().feed(encode_frame(frame, codec)))
        assert decoded == frame
        assert decoded["tr"] == 12884901888

    @pytest.mark.parametrize("op", HOT)
    @pytest.mark.parametrize("codec", sorted(WIRE_CODECS))
    def test_legacy_frames_without_tr_still_decode(self, op, codec):
        # the exact bytes a pre-telemetry peer sends: no tr key at all
        frame = SAMPLE_FRAMES[op]
        assert "tr" not in frame
        (decoded,) = list(FrameReader().feed(encode_frame(frame, codec)))
        assert decoded == frame
        assert decoded.get("tr") is None

    def test_tr_absence_is_free_on_the_binary_wire(self):
        # the presence bitmask means an untagged frame pays zero bytes
        # for the schema slot — the PR-8 hot path is unchanged
        frame = dict(SAMPLE_FRAMES["msg"])
        bare = encode_frame(frame, CODEC_BINARY)
        frame["tr"] = 17
        tagged = encode_frame(frame, CODEC_BINARY)
        assert len(tagged) > len(bare)


# -- hypothesis: fuzzed payload parity ----------------------------------------

_scalars = st.one_of(
    st.none(),
    st.booleans(),
    st.integers(min_value=-(2**200), max_value=2**200),
    st.floats(allow_nan=False, allow_infinity=False),
    st.text(max_size=40),
    st.just(BOTTOM),
)
_keys = st.one_of(
    st.integers(min_value=-(2**40), max_value=2**40),
    st.floats(allow_nan=False, allow_infinity=False),
    st.text(max_size=12),
    st.tuples(st.integers(min_value=0, max_value=99), st.text(max_size=6)),
)
_payloads = st.recursive(
    _scalars,
    lambda children: st.one_of(
        st.lists(children, max_size=5),
        st.lists(children, max_size=5).map(tuple),
        st.dictionaries(_keys, children, max_size=4),
    ),
    max_leaves=25,
)


class TestFuzzedParity:
    @settings(max_examples=200, deadline=None)
    @given(payload=_payloads)
    def test_any_payload_decodes_identically_on_both_codecs(self, payload):
        frame = {"op": "msg", "dest": 0, "action": "x",
                 "payload": encode_payload(payload)}
        decoded = {}
        for codec in WIRE_CODECS:
            (msg,) = list(FrameReader().feed(encode_frame(frame, codec)))
            decoded[codec] = msg
            assert decode_payload(msg["payload"]) == payload
        assert decoded[CODEC_JSON] == decoded[CODEC_BINARY]

    def test_ints_beyond_the_bigint_width_are_rejected_not_corrupted(self):
        frame = {"op": "msg", "payload": encode_payload(1 << 2100)}
        assert list(FrameReader().feed(encode_frame(frame, CODEC_JSON)))
        with pytest.raises(FrameError):
            encode_frame(frame, CODEC_BINARY)


# -- garbage rejection: poisoned bodies must not break framing -----------------


def _poison(codec: str, body: bytes) -> bytes:
    """A wire-valid header fronting an arbitrary (garbage?) body."""
    return _HEADER.pack((CODEC_TAGS[codec] << 24) | len(body)) + body


class TestGarbageRejection:
    @pytest.mark.parametrize("codec,body", [
        (CODEC_JSON, b"not json at all"),
        (CODEC_JSON, b'{"truncated": '),
        (CODEC_JSON, b"\xff\xfe invalid utf-8"),
        (CODEC_JSON, b"[1, 2, 3]"),          # valid JSON, not an object
        (CODEC_BINARY, b""),                   # empty body
        (CODEC_BINARY, b"\xff" * 8),           # unknown type byte
        (CODEC_BINARY, b"\x08\x10only"),       # str8 length overruns body
        (CODEC_BINARY, b"\x03\x00\x00"),       # trailing bytes behind an int8
        (CODEC_BINARY, b"\x03\x07"),           # valid int, not an object
    ])
    def test_garbage_body_raises_frame_decode_error(self, codec, body):
        with pytest.raises(FrameDecodeError):
            list(FrameReader().feed(_poison(codec, body)))

    def test_stream_stays_framed_after_a_poisoned_body(self):
        # the recoverable property the server's read loop relies on: a
        # FrameDecodeError consumes exactly the poisoned frame, so the
        # next frame on the wire still parses and the connection lives
        reader = FrameReader()
        blob = _poison(CODEC_BINARY, b"\xff\xfe\xfd") + encode_frame(
            SAMPLE_FRAMES["ping"], CODEC_BINARY)
        with pytest.raises(FrameDecodeError):
            list(reader.feed(blob))
        assert list(reader.feed(b"")) == [SAMPLE_FRAMES["ping"]]
        assert reader.buffered == 0

    def test_unknown_codec_tag_is_a_hard_framing_error(self):
        blob = _HEADER.pack((0x7F << 24) | 4) + b"body"
        with pytest.raises(FrameError) as err:
            list(FrameReader().feed(blob))
        assert not isinstance(err.value, FrameDecodeError)

    @settings(max_examples=300, deadline=None)
    @given(codec=st.sampled_from(sorted(WIRE_CODECS)),
           body=st.binary(max_size=200))
    def test_fuzzed_bodies_either_decode_or_raise_cleanly(self, codec, body):
        reader = FrameReader()
        try:
            for msg in reader.feed(_poison(codec, body)):
                assert isinstance(msg, dict)
        except FrameDecodeError:
            pass  # rejected -- the only acceptable failure mode
        # either way the poisoned frame was consumed: framing holds
        assert reader.buffered == 0
        assert list(reader.feed(encode_frame({"op": "ping"}, codec))) == [
            {"op": "ping"}
        ]
