"""Unit tests for wave coalescing: flush boundaries must never reorder.

Three coalescing sites exist (client submit buffer, server connection
outbox, peer links); each promises FIFO within and across flushes.
These tests pin the promises without sockets: frames are captured from
fake writers and decoded with :class:`FrameReader`.
"""

from __future__ import annotations

import asyncio

import pytest

from repro.core.requests import INSERT, REMOVE
from repro.net.client import SkueueClient
from repro.net.server import _PeerLink, coalesce_frames
from repro.net.transport import (
    CODEC_BINARY,
    CODEC_JSON,
    MAX_FRAME_BYTES,
    FrameReader,
    decode_payload,
)


def _done(req: int) -> dict:
    return {"op": "done", "req": req, "kind": INSERT, "result": None}


class TestCoalesceFrames:
    def test_adjacent_dones_merge_in_order(self):
        out = coalesce_frames([_done(1), _done(2), _done(3)])
        assert out == [{"op": "done_batch",
                        "dones": [[1, INSERT, None], [2, INSERT, None],
                                  [3, INSERT, None]]}]

    def test_interleaved_frames_break_the_run_and_keep_their_place(self):
        other = {"op": "host_map", "map": {"version": 2}}
        out = coalesce_frames([_done(1), _done(2), other, _done(3)])
        assert out[0]["op"] == "done_batch"
        assert out[0]["dones"] == [[1, INSERT, None], [2, INSERT, None]]
        assert out[1] is other          # ordering across the boundary
        assert out[2] == _done(3)       # a lone done stays a plain done

    def test_no_dones_passes_through_untouched(self):
        frames = [{"op": "error", "message": "x"}, {"op": "pong", "host": 0}]
        assert coalesce_frames(list(frames)) == frames

    def test_empty_input_emits_nothing(self):
        assert coalesce_frames([]) == []


class TestPeerLinkEncodeBatch:
    def _decode(self, blob: bytes) -> list[dict]:
        return list(FrameReader().feed(blob))

    def _hot(self, seq: int) -> dict:
        return {"op": "complete", "req": seq, "src": 0, "seq": seq,
                "value": seq}

    def test_single_frame_ships_raw_not_wrapped(self):
        link = _PeerLink(("127.0.0.1", 1), 0, codec=CODEC_BINARY)
        assert self._decode(link.encode_batch([self._hot(1)])) == [self._hot(1)]

    def test_run_of_hot_frames_rides_one_batch_wrapper(self):
        link = _PeerLink(("127.0.0.1", 1), 0, codec=CODEC_BINARY)
        frames = [self._hot(i) for i in range(5)]
        (wrapper,) = self._decode(link.encode_batch(frames))
        assert wrapper["op"] == "batch"
        assert wrapper["frames"] == frames  # order preserved inside

    def test_bulk_frames_break_the_run_and_ride_json(self):
        link = _PeerLink(("127.0.0.1", 1), 0, codec=CODEC_BINARY)
        bulk = {"op": "retire", "host": 2, "records": [], "forwards": {}}
        blob = link.encode_batch([self._hot(1), self._hot(2), bulk,
                                  self._hot(3)])
        decoded = self._decode(blob)
        assert [f["op"] for f in decoded] == ["batch", "retire", "complete"]
        assert decoded[0]["frames"] == [self._hot(1), self._hot(2)]
        assert decoded[2] == self._hot(3)
        # the bulk frame must be the JSON section of the blob: find its
        # header and check the codec tag byte is 0x00
        batch_len = len(link.encode_batch([self._hot(1), self._hot(2)]))
        assert blob[batch_len] == 0x00  # JSON tag on the retire frame
        assert blob[0] == 0x01          # binary tag on the batch wrapper

    def test_oversized_wrapper_falls_back_to_individual_frames(self):
        link = _PeerLink(("127.0.0.1", 1), 0, codec=CODEC_JSON)
        big = "x" * (MAX_FRAME_BYTES // 2 - 1024)
        frames = [{"op": "msg", "dest": i, "action": "a", "payload": big}
                  for i in range(3)]
        decoded = self._decode(link.encode_batch(frames))
        assert decoded == frames  # no wrapper, nothing dropped, in order


@pytest.fixture()
def fake_client(monkeypatch):
    """A coalescing client wired to a byte-capturing fake writer."""

    class FakeWriter:
        def __init__(self):
            self.chunks: list[bytes] = []
            self.drains = 0

        def write(self, data: bytes) -> None:
            self.chunks.append(bytes(data))

        async def drain(self) -> None:
            self.drains += 1

    client = SkueueClient({0: ("127.0.0.1", 1)}, codec="binary",
                          coalesce=True)
    writer = FakeWriter()
    client._writers[0] = writer
    client._send_codecs[0] = CODEC_BINARY
    client.host_for = lambda pid: 0

    async def _noop(host):
        return None

    monkeypatch.setattr(client, "_ensure_host", _noop)
    return client, writer


def _frames(writer) -> list[dict]:
    return list(FrameReader().feed(b"".join(writer.chunks)))


class TestClientSubmitCoalescing:
    def test_one_tick_of_submits_is_one_frame_in_order(self, fake_client):
        client, writer = fake_client

        async def run():
            return await asyncio.gather(*[
                client._submit(pid, INSERT, ("item", pid))
                for pid in range(6)
            ])

        req_ids = asyncio.run(run())
        (frame,) = _frames(writer)
        assert frame["op"] == "submit_batch"
        # within the batch: exactly the per-client submission order
        assert [sub[0] for sub in frame["subs"]] == req_ids
        assert [decode_payload(sub[3]) for sub in frame["subs"]] == [
            ("item", pid) for pid in range(6)
        ]
        assert writer.drains == 1  # one buffered write, one drain

    def test_timer_partial_flush_never_reorders(self, fake_client):
        client, writer = fake_client
        client.coalesce_window = 0.02

        async def run():
            first = [client._queue_submit(pid, INSERT, pid)
                     for pid in range(3)]
            await asyncio.sleep(0.1)  # timer fires: partial flush
            second = [client._queue_submit(pid, REMOVE, None)
                      for pid in range(2)]
            await asyncio.sleep(0.1)
            return first + second

        req_ids = asyncio.run(run())
        frames = _frames(writer)
        assert [f["op"] for f in frames] == ["submit_batch", "submit_batch"]
        flushed = [sub[0] for f in frames for sub in f["subs"]]
        assert flushed == req_ids  # FIFO across the flush boundary too

    def test_single_staged_submit_flushes_as_plain_submit(self, fake_client):
        client, writer = fake_client
        req_id = asyncio.run(client._submit(0, INSERT, "only"))
        (frame,) = _frames(writer)
        assert frame["op"] == "submit"
        assert frame["req"] == req_id

    def test_empty_buffer_flush_sends_nothing(self, fake_client):
        client, writer = fake_client

        async def run():
            await client._flush_submits(0)
            await client._flush_all()

        asyncio.run(run())
        assert writer.chunks == []
        assert writer.drains == 0

    def test_staged_submits_for_a_dead_host_are_dropped_not_written(
            self, fake_client):
        # the recover path resubmits pending requests; flushing the
        # stale buffer as well would submit them twice
        client, writer = fake_client

        async def run():
            client._queue_submit(0, INSERT, "staged")
            del client._writers[0]
            for task in list(client._flush_tasks.values()):
                await task

        asyncio.run(run())
        assert writer.chunks == []
        assert client._submit_buf == {}
