"""Cross-codec end-to-end: the protocol's answers must not depend on
the wire encoding.

The same mixed workload runs over a JSON deployment, a binary
deployment, and a deliberately mixed one (per-host codecs, so every
peer link and client connection negotiates independently) — for each of
the queue, stack, and heap structures — and the merged histories go
through the Definition-1 checkers.  Marked ``net`` (excluded from
tier-1; CI runs it in the dedicated net job).
"""

from __future__ import annotations

import asyncio
import random
import struct

import pytest

from repro.net.client import SkueueClient
from repro.net.launcher import launch_local
from repro.net.transport import (
    CODEC_BINARY,
    CODEC_JSON,
    encode_frame,
    read_frame,
)
from repro.verify import (
    check_heap_history,
    check_queue_history,
    check_stack_history,
)

pytestmark = pytest.mark.net

N_HOSTS, N_PROCESSES, OPS = 3, 6, 60

#: codec per host index; "mixed" makes every inter-host direction
#: exercise a different (sender codec, receiver) pairing
CODEC_DEPLOYMENTS = {
    "json": ["json"] * N_HOSTS,
    "binary": ["binary"] * N_HOSTS,
    "mixed": ["json", "binary", "json"],
}

_CHECKERS = {
    "queue": check_queue_history,
    "stack": check_stack_history,
    "heap": check_heap_history,
}


async def _drive(deployment, structure: str, wire: str):
    """The same seeded mixed workload, whatever the wire speaks."""
    rng = random.Random(f"codecs-{structure}")  # same ops for every wire
    async with SkueueClient(deployment.host_map) as client:
        for i in range(OPS):
            pid = rng.randrange(N_PROCESSES)
            if rng.random() < 0.6:
                await client.insert(pid, f"elem-{i}",
                                    rng.randrange(3) if structure == "heap"
                                    else 0)
            else:
                await client.delete_min(pid)
        await client.wait_all(timeout=120.0)
        records = await client.collect_records()
        # the client offered both codecs; each host answered with its
        # own preference, so the negotiated send codecs must mirror the
        # deployment's per-host codec list
        negotiated = [client._send_codecs[h] for h in sorted(deployment.host_map)]
        assert negotiated == CODEC_DEPLOYMENTS[wire]
        return records


@pytest.mark.parametrize("wire", sorted(CODEC_DEPLOYMENTS))
@pytest.mark.parametrize("structure", sorted(_CHECKERS))
def test_same_workload_verifies_on_every_wire(structure, wire):
    with launch_local(
        N_HOSTS,
        N_PROCESSES,
        seed=11,
        structure=structure,
        n_priorities=3,
        codec=CODEC_DEPLOYMENTS[wire],
    ) as deployment:
        assert deployment.alive
        records = asyncio.run(_drive(deployment, structure, wire))

    assert len(records) == OPS
    assert all(rec.completed for rec in records)
    # the merged history spans every host's shard: coalesced frames
    # crossed real host boundaries on this wire
    assert {rec.pid % N_HOSTS for rec in records} == set(range(N_HOSTS))
    _CHECKERS[structure](records)


def test_legacy_hello_without_codec_offer_gets_json():
    # a pre-negotiation client sends a bare hello; a binary-preferring
    # host must still answer JSON-framed and pick JSON for the session
    async def scenario(deployment):
        reader, writer = await asyncio.open_connection(
            *next(iter(deployment.host_map.values()))
        )
        try:
            writer.write(encode_frame({"op": "hello"}, CODEC_JSON))
            await writer.drain()
            welcome = await read_frame(reader)
            assert welcome["op"] == "welcome"
            assert welcome["codec"] == CODEC_JSON
        finally:
            writer.close()
            await writer.wait_closed()

    with launch_local(1, 2, seed=5, codec=CODEC_BINARY) as deployment:
        asyncio.run(scenario(deployment))


def test_garbage_frame_does_not_kill_the_connection():
    # a poisoned body behind a valid header is dropped server-side
    # (FrameDecodeError -> note_error); the same connection must still
    # answer a well-formed ping afterwards
    async def scenario(deployment):
        reader, writer = await asyncio.open_connection(
            *next(iter(deployment.host_map.values()))
        )
        try:
            garbage = b"\xff\xfe\xfd\xfc"
            writer.write(struct.pack(">I", (0x01 << 24) | len(garbage)))
            writer.write(garbage)
            writer.write(encode_frame({"op": "ping"}, CODEC_BINARY))
            await writer.drain()
            pong = await read_frame(reader)
            assert pong is not None and pong["op"] == "pong"
        finally:
            writer.close()
            await writer.wait_closed()

    with launch_local(1, 2, seed=6) as deployment:
        asyncio.run(scenario(deployment))
        # the deployment is still healthy end-to-end after the poison
        async def still_works(deployment):
            async with SkueueClient(deployment.host_map) as client:
                req = await client.enqueue(0, "after-poison")
                await client.wait(req, timeout=30.0)

        asyncio.run(still_works(deployment))
