"""Crash-stop fault tolerance, end to end over real processes.

Each test launches a TCP deployment, drives a mixed workload, then
SIGKILLs one host mid-stream (``NetDeployment.kill_host`` — no drain,
no goodbye).  The survivors must detect the silence, evict the corpse,
rebuild from merged record dumps + replicas, and finish the workload —
and the merged history must still pass the sequential-consistency
checker.

The durability claim under test (k=2 replication, ack-gated DONE): any
operation the *client* saw acknowledged before the crash is present and
completed in the post-crash merged history.  Operations in flight at
the moment of the kill may be re-run or transparently resubmitted;
either way they appear exactly once per req_id in the history the
checker sees.
"""

from __future__ import annotations

import asyncio
import json
import time
import urllib.request

import pytest

from repro.net.client import SkueueClient
from repro.net.launcher import launch_local
from repro.ops.cli import _request
from repro.verify.seqcons import check_queue_history

pytestmark = pytest.mark.net

# generous CI bound; the detector needs ~1.25s of silence + confirmation
EVICT_WITHIN = 20.0


async def _drive_load(client, stop, tag, acked, max_ops=4000):
    """Submit mixed ops round-robin over live pids until told to stop.

    Submissions that race the crash window (dead host still in the map)
    raise connection errors; real workloads retry, we just skip — the
    durability assertion only covers operations that were *accepted*.
    """
    n = 0
    while not stop.is_set() and n < max_ops:
        pids = client.live_pids()
        pid = pids[n % len(pids)]
        try:
            if n % 3 == 2:
                req = await client.dequeue(pid)
            else:
                req = await client.enqueue(pid, f"{tag}-{n}")
            acked.append(req)
        except (ConnectionError, OSError):
            pass
        n += 1
        await asyncio.sleep(0.002)


def _completed_ids(records):
    return {rec.req_id for rec in records if rec.completed}


def _crash_scenario(deployment, victim):
    """Drive load, SIGKILL ``victim``, and return the post-mortem facts."""

    async def scenario():
        async with SkueueClient(deployment.host_map) as client:
            stop = asyncio.Event()
            acked: list[int] = []
            load = asyncio.create_task(
                _drive_load(client, stop, f"kill{victim}", acked)
            )
            await asyncio.sleep(1.0)

            # ops acknowledged before the kill: these must survive it
            done_before = {r for r in acked if client.is_done(r)}
            loop = asyncio.get_running_loop()
            started = time.monotonic()
            await loop.run_in_executor(
                None, lambda: deployment.kill_host(victim, timeout=90.0)
            )
            evict_elapsed = time.monotonic() - started

            await asyncio.sleep(1.5)  # let post-crash load flow
            stop.set()
            await load
            await client.wait_all(timeout=120.0)
            records = await client.collect_records()
            return acked, done_before, evict_elapsed, records

    return asyncio.run(scenario())


def test_kill_noncoordinator_under_load():
    """SIGKILL a follower mid-workload: evict, rebuild, stay consistent."""
    with launch_local(3, 6, seed=42, id_slots=16) as deployment:
        acked, done_before, elapsed, records = _crash_scenario(deployment, 1)

        assert elapsed < EVICT_WITHIN, f"eviction took {elapsed:.1f}s"
        cluster = deployment.cluster_map()
        assert 1 not in cluster.hosts
        assert 1 in cluster.departed
        assert cluster.recovery_epoch >= 1

        completed = _completed_ids(records)
        lost = done_before - completed
        assert not lost, f"{len(lost)} acknowledged ops missing after crash"
        assert len(acked) > 200  # the workload actually ran
        check_queue_history(records)


def test_kill_coordinator_under_load():
    """SIGKILL host 0: the survivors re-elect and run the eviction."""
    with launch_local(3, 6, seed=7, id_slots=16) as deployment:
        acked, done_before, elapsed, records = _crash_scenario(deployment, 0)

        assert elapsed < EVICT_WITHIN, f"eviction took {elapsed:.1f}s"
        cluster = deployment.cluster_map()
        assert 0 not in cluster.hosts
        assert 0 in cluster.departed
        assert cluster.recovery_epoch >= 1
        # the new coordinator is the lowest live index
        assert min(cluster.hosts) == 1

        completed = _completed_ids(records)
        lost = done_before - completed
        assert not lost, f"{len(lost)} acknowledged ops missing after crash"
        check_queue_history(records)


def test_ops_surface_reports_eviction():
    """/health over HTTP + the health frame both expose detector state,
    and after a kill the eviction shows up on every survivor."""
    with launch_local(3, 6, seed=11, id_slots=16) as deployment:
        address = deployment.host_map[2]

        # the TCP pong advertises where the HTTP ops listener landed
        pong = _request(tuple(address), {"op": "ping"}, "pong")
        ops_port = pong["ops_port"]
        assert ops_port > 0

        with urllib.request.urlopen(
            f"http://127.0.0.1:{ops_port}/health", timeout=10
        ) as reply:
            health = json.loads(reply.read())
        assert health["host"] == 2
        assert health["wired"] is True
        assert health["recovering"] is False
        assert health["detector"]["suspects"] == []
        assert sorted(health["replica_targets"]) == [0, 1]

        with urllib.request.urlopen(
            f"http://127.0.0.1:{ops_port}/status", timeout=10
        ) as reply:
            status = json.loads(reply.read())
        assert set(status["hosts"]) == {"0", "1", "2"}

        deployment.kill_host(1, timeout=90.0)

        for index, addr in deployment.host_map.items():
            health = _request(tuple(addr), {"op": "health"}, "health")
            evicted = {event["host"] for event in health["evictions"]}
            assert 1 in evicted, f"host {index} never recorded the eviction"
            assert health["recovering"] is False

        # the dead host's replica slot moved off the survivor ring
        health = _request(tuple(deployment.host_map[2]), {"op": "health"}, "health")
        assert 1 not in health["replica_targets"]


def test_fuzzer_net_runner_executes_a_crash_scenario():
    """The skueue-fuzz ``net`` runner plays a seeded scenario (crash
    axis included) over a real deployment and verifies the history."""
    from repro.testing.scenario import NET_RUNNER, Scenario, run_scenario

    expanded = [Scenario.from_seed(seed, structure="queue", runner=NET_RUNNER)
                for seed in range(50)]
    # the codec axis is swept: net seeds draw both wires, and the drawn
    # codec survives the trace round trip (replays pin the same wire)
    assert {sc.codec for sc in expanded} == {"json", "binary"}
    for sc in expanded[:4]:
        assert sc.to_json()["codec"] == sc.codec
        assert Scenario.from_json(sc.to_json()).codec == sc.codec

    # pick the first seed whose expansion actually schedules a SIGKILL
    scenario = next(sc for sc in expanded if sc.crashes)
    result = run_scenario(scenario)
    assert not result.failed, result.violation
    assert result.submitted > 0
    assert len(result.records) >= result.submitted
