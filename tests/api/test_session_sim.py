"""The handle-based public API on the simulator backends.

The TCP variants of these behaviours live in ``tests/net/test_api_tcp.py``
(they spawn OS processes and are excluded from tier-1); everything here
is hermetic and runs on both in-process engines.
"""

from __future__ import annotations

import asyncio

import pytest

import repro
from repro import BOTTOM
from repro.api import OpHandle, QueueSession, StackSession, connect
from repro.core.requests import INSERT, REMOVE
from tests.conftest import run_uniform_workload

BACKENDS = ("sync", "async")


@pytest.fixture(params=BACKENDS)
def queue(request):
    with connect(request.param, n_processes=8, seed=11) as session:
        yield session


@pytest.fixture(params=BACKENDS)
def stack(request):
    with connect(request.param, structure="stack", n_processes=8, seed=11) as session:
        yield session


class TestConnect:
    def test_connect_is_exported_at_top_level(self):
        assert repro.connect is connect

    def test_returns_structure_specific_sessions(self):
        with connect("sync") as q, connect("sync", structure="stack") as s:
            assert isinstance(q, QueueSession)
            assert isinstance(s, StackSession)

    def test_unknown_backend_and_structure(self):
        with pytest.raises(ValueError):
            connect("carrier-pigeon")
        with pytest.raises(ValueError):
            connect("sync", structure="deque")

    def test_cluster_escape_hatch_and_kwargs(self):
        with connect("sync", n_processes=4, seed=1, shuffle_delivery=False) as q:
            assert q.n_processes == 4
            assert not q.cluster.runtime.shuffle_delivery


class TestHandles:
    def test_enqueue_dequeue_round_trip(self, queue):
        put = queue.enqueue("job-1", pid=3)
        got = queue.dequeue(pid=5)
        assert isinstance(put, OpHandle) and isinstance(got, OpHandle)
        assert put.kind == INSERT and got.kind == REMOVE
        assert not put.done()
        assert put.result() is True
        assert got.result() == "job-1"
        assert put.done() and got.done()

    def test_result_is_idempotent(self, queue):
        handle = queue.enqueue("x")
        assert handle.result() is handle.result() is True

    def test_empty_dequeue_returns_bottom(self, queue):
        assert queue.dequeue().result() is BOTTOM

    def test_default_pids_round_robin(self, queue):
        handles = [queue.enqueue(i) for i in range(queue.n_processes + 2)]
        assert [h.pid for h in handles[:3]] == [0, 1, 2]
        assert handles[queue.n_processes].pid == 0  # wrapped around

    def test_handles_are_awaitable(self, queue):
        async def go():
            put = queue.enqueue("via-await", pid=2)
            got = queue.dequeue(pid=6)
            assert (await put) is True
            return await got

        assert asyncio.run(go()) == "via-await"

    def test_stack_handles(self, stack):
        stack.push("a", pid=0)
        stack.push("b", pid=0)
        top = stack.pop(pid=0)
        assert top.result() == "b"
        stack.drain()
        stack.verify()


class TestBatchAndDrain:
    def test_batch_preserves_per_pid_program_order(self, queue):
        # all ops at one process: sequential consistency degenerates to
        # sequential execution, so FIFO results are fully determined
        n = 6
        handles = queue.submit_batch(
            [("enqueue", f"x{i}", 0) for i in range(n)]
            + [("dequeue", 0)] * n
        )
        queue.drain()
        assert [h.result() for h in handles[n:]] == [f"x{i}" for i in range(n)]

    def test_batch_spec_shapes(self, queue):
        put, mixed, rem = queue.submit_batch(
            [("push", "alias-ok"), ("insert", "x", 4), ("remove",)]
        )
        queue.drain()
        assert put.result() is True and mixed.pid == 4
        assert rem.result() in ("alias-ok", "x", BOTTOM)

    def test_bad_specs_rejected(self, queue):
        with pytest.raises(ValueError):
            queue.submit_batch([("enqueue", "x", 0, "extra")])
        with pytest.raises(ValueError):
            queue.submit_batch([("dequeue", 0, 1)])
        with pytest.raises(ValueError):
            queue.submit("frobnicate")

    def test_op_and_dict_specs(self, queue):
        from repro import Op

        put, rem, dput = queue.submit_batch(
            [
                Op("enqueue", item="a", pid=2),
                Op("dequeue", pid=2),
                {"kind": "enqueue", "item": "b"},
            ]
        )
        queue.drain()
        assert put.result() is True and put.pid == 2
        assert rem.result() == "a"
        assert dput.result() is True

    def test_bad_op_and_dict_specs_rejected(self, queue):
        from repro import Op

        with pytest.raises(ValueError):
            queue.submit_batch([{"kind": "enqueue", "color": "red"}])
        with pytest.raises(ValueError):
            queue.submit_batch([{"item": "kindless"}])
        with pytest.raises(ValueError):
            # removals carry no item: the named shape makes this checkable
            queue.submit_batch([Op("dequeue", item="x")])
        with pytest.raises(ValueError):
            queue.submit_batch([Op("frobnicate")])

    def test_drain_completes_everything(self, queue):
        handles = [queue.enqueue(i) for i in range(10)]
        assert not all(h.done() for h in handles)
        queue.drain()
        assert all(h.done() for h in handles)
        # wait_all is the same operation under the client-API name
        queue.wait_all()

    def test_uniform_workload_script(self, queue):
        handles, records = run_uniform_workload(queue, ops=40, seed=5)
        assert len(records) == len(handles)


class TestResults:
    def test_result_of_unknown_id_raises(self, queue):
        with pytest.raises(KeyError):
            queue.result_of(123456)
        with pytest.raises(KeyError):
            queue.result_of(-1)

    def test_result_of_pending_is_none(self, queue):
        handle = queue.enqueue("x")
        assert queue.result_of(handle.req_id) is None

    def test_history_matches_handles(self, queue):
        handles = queue.submit_batch([("enqueue", i) for i in range(4)])
        queue.drain()
        records = queue.history()
        assert {h.req_id for h in handles} == {r.req_id for r in records}

    def test_old_facade_result_of_also_raises_keyerror(self):
        from repro import SkueueCluster

        with SkueueCluster(n_processes=4, seed=0) as cluster:
            with pytest.raises(KeyError):
                cluster.result_of(99)
            with pytest.raises(KeyError):
                cluster.result_of(-1)
            handle = cluster.enqueue(0, "x")
            cluster.run_until_done()
            assert cluster.result_of(handle) is True
