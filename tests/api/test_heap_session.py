"""Heap sessions of the public API on the simulator backends.

The acceptance scenario's sim half: the *same* mixed-priority workload
helper (``tests/conftest.py``, ``run_priority_workload``) runs on sync
and async backends here and on a real TCP deployment in
``tests/net/test_api_tcp.py``.
"""

from __future__ import annotations

import asyncio

import pytest

from repro import BOTTOM
from repro.api import connect
from repro.api.session import HeapSession
from tests.conftest import run_priority_workload


@pytest.mark.parametrize("backend", ["sync", "async"])
def test_priority_workload_runs_on_both_simulators(backend):
    with connect(
        backend, structure="heap", n_processes=8, seed=31, n_priorities=3
    ) as session:
        assert isinstance(session, HeapSession)
        assert session.n_priorities == 3
        handles, records = run_priority_workload(session, ops=40, seed=31)
        assert len(records) == 40


def test_insert_and_delete_min_handles():
    with connect("sync", structure="heap", n_processes=6, seed=2) as heap:
        low = heap.insert("later", priority=3, pid=0)
        high = heap.insert("now", priority=0, pid=1)
        heap.drain()
        assert low.result() is True and high.result() is True
        assert "priority=3" in repr(low)
        first = heap.delete_min(pid=2)
        assert first.result() == "now"
        second = heap.delete_min(pid=3)
        assert second.result() == "later"
        assert heap.delete_min(pid=4).result() is BOTTOM
        heap.verify()


def test_submit_batch_with_priorities_preserves_program_order():
    with connect(
        "sync", structure="heap", n_processes=4, seed=5, n_priorities=4
    ) as heap:
        # same pid throughout: FIFO within each class is pinned
        handles = heap.submit_batch(
            [("insert", f"low-{i}", 1, 2) for i in range(3)]
            + [("insert", f"high-{i}", 1, 0) for i in range(3)]
        )
        heap.drain()
        assert all(handle.result() is True for handle in handles)
        got = [heap.delete_min(pid=1).result() for _ in range(6)]
        assert got == ["high-0", "high-1", "high-2", "low-0", "low-1", "low-2"]
        heap.verify()


def test_handles_awaitable_on_heap_sessions():
    with connect("sync", structure="heap", n_processes=4, seed=7) as heap:

        async def go():
            put = heap.insert("via-await", priority=1, pid=0)
            got = heap.delete_min(pid=0)
            assert (await put) is True
            return await got

        assert asyncio.run(go()) == "via-await"


def test_priority_validation_at_the_session_surface():
    with connect(
        "sync", structure="heap", n_processes=4, seed=8, n_priorities=2
    ) as heap:
        with pytest.raises(ValueError):
            heap.insert("x", priority=2)
        with pytest.raises(ValueError):
            heap.insert("x", priority=-1)
        with pytest.raises(ValueError):
            heap.submit_batch([("insert", "x", 0, 9)])
        # removals never take a priority — identical rule on every
        # backend (repro.core.structures.check_priority)
        with pytest.raises(ValueError):
            heap.submit("delete_min", priority=1)
    with connect("sync", structure="queue", n_processes=4, seed=8) as queue:
        with pytest.raises(ValueError):
            queue.submit("enqueue", "x", priority=1)


def test_structure_registry_drives_connect_errors():
    with pytest.raises(ValueError, match="'heap', 'queue', 'stack'"):
        connect("sync", structure="treap")
