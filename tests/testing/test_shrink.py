"""The shrinker on deliberately broken checkouts (the acceptance demo).

Mutate the anchor arithmetic — the heap anchor drains priority classes
top-down instead of bottom-up — and show the full pipeline: the fuzzer
finds a failing seed, the shrinker minimises it to a handful of ops, the
recorded trace replays deterministically to the same violation, and the
model-independent search checker confirms the shrunk history admits *no*
valid order.
"""

import pytest

from repro.core.anchor import HeapAnchorState, QueueAnchorState
from repro.testing import Scenario, run_scenario
from repro.testing.shrink import shrink_scenario
from repro.testing.traces import record_failure, replay_trace
from repro.verify import exists_valid_order


def _broken_heap_assign(self, runs):
    """HeapAnchorState.assign with mutated arithmetic: remove runs drain
    the *highest* non-empty class first (violates minimum-priority)."""
    if not runs:
        return []
    first, last = self.first, self.last
    n_classes = len(first)
    value = self.counter
    removes = runs[0]
    segments = []
    served = 0
    priority = n_classes - 1  # mutation: top-down instead of bottom-up
    while served < removes and priority >= 0:
        avail = last[priority] - first[priority] + 1
        if avail <= 0:
            priority -= 1
            continue
        take = min(removes - served, avail)
        segments.append((priority, first[priority], first[priority] + take - 1))
        first[priority] += take
        served += take
    out = [(value, tuple(segments))]
    value += removes
    for priority in range(n_classes):
        count = runs[priority + 1] if len(runs) > priority + 1 else 0
        lo = last[priority] + 1
        hi = last[priority] + count
        last[priority] += count
        out.append((lo, hi, value))
        value += count
    self.counter = value
    return out


def _find_failing(structure, runner, seeds=40):
    for seed in range(seeds):
        scenario = Scenario.from_seed(seed, structure=structure, runner=runner)
        result = run_scenario(scenario)
        if result.failed:
            return scenario, result
    raise AssertionError(f"no failing seed among {seeds} for the mutation")


class TestBrokenHeapAnchor:
    """The acceptance scenario: mutated anchor arithmetic end to end."""

    @pytest.fixture(autouse=True)
    def _mutate(self, monkeypatch):
        monkeypatch.setattr(HeapAnchorState, "assign", _broken_heap_assign)

    def test_fuzzer_finds_shrinks_and_replays_the_bug(self):
        scenario, result = _find_failing("heap", "async")
        assert result.violation.kind == "consistency"

        shrunk = shrink_scenario(scenario, result.violation)
        assert not shrunk.truncated
        assert len(shrunk.scenario.ops) <= 15, (
            f"shrunk to {len(shrunk.scenario.ops)} ops, expected <= 15"
        )
        assert shrunk.violation.same_failure(result.violation)

        # the recorded trace replays deterministically to the same violation
        trace, recorded = record_failure(shrunk.scenario)
        report = replay_trace(trace)
        assert report.reproduced, report.explain()
        assert report.result.violation.same_failure(result.violation)

        # cross-validation: the shrunk history admits no valid order at all
        # (model-independent: does not trust the protocol's witness)
        if len(trace.history) <= 12:
            assert not exists_valid_order(recorded.records, "heap")

    def test_sync_runner_catches_it_too(self):
        scenario, result = _find_failing("heap", "sync")
        shrunk = shrink_scenario(scenario, result.violation)
        assert len(shrunk.scenario.ops) <= 15


class TestBrokenQueueAnchor:
    def test_overlapping_ranks_shrink_small(self, monkeypatch):
        original = QueueAnchorState.assign

        def overlapping(self, runs):
            before = self.counter
            out = original(self, runs)
            # mutation: hand the next wave a counter one rank too low,
            # so value ranks collide across waves
            if self.counter > before:
                self.counter -= 1
            return out

        monkeypatch.setattr(QueueAnchorState, "assign", overlapping)
        scenario, result = _find_failing("queue", "sync")
        assert result.violation.kind == "consistency"
        shrunk = shrink_scenario(scenario, result.violation)
        assert len(shrunk.scenario.ops) <= 15
        trace, _ = record_failure(shrunk.scenario)
        report = replay_trace(trace)
        assert report.reproduced, report.explain()


class TestShrinkerMechanics:
    def test_refuses_passing_scenarios(self):
        scenario = Scenario.from_seed(0, structure="queue", runner="sync")
        with pytest.raises(ValueError, match="does not fail"):
            shrink_scenario(scenario)

    def test_probe_budget_truncates(self, monkeypatch):
        monkeypatch.setattr(HeapAnchorState, "assign", _broken_heap_assign)
        scenario, result = _find_failing("heap", "sync")
        shrunk = shrink_scenario(scenario, result.violation, max_probes=1)
        assert shrunk.truncated
        assert shrunk.probes == 1
