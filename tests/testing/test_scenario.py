"""Scenario expansion, execution, and (de)serialisation."""

import pytest

from repro.core.requests import INSERT, REMOVE
from repro.testing import Scenario, run_scenario
from repro.testing.scenario import RUNNERS, STRUCTURES


class TestFromSeed:
    def test_deterministic_expansion(self):
        a = Scenario.from_seed(1234)
        b = Scenario.from_seed(1234)
        assert a == b

    def test_different_seeds_differ(self):
        assert Scenario.from_seed(1) != Scenario.from_seed(2)

    def test_axes_can_be_pinned(self):
        sc = Scenario.from_seed(7, structure="stack", runner="async")
        assert sc.structure == "stack"
        assert sc.runner == "async"

    def test_scripts_are_well_formed(self):
        for seed in range(20):
            sc = Scenario.from_seed(seed)
            assert sc.structure in STRUCTURES
            assert sc.runner in RUNNERS
            assert 4 <= sc.n_processes <= 12
            uids = [op[4] for op in sc.ops]
            assert len(uids) == len(set(uids)), "op uids must be unique"
            for round_no, pid, kind, priority, _uid in sc.ops:
                assert 0 <= round_no < sc.n_rounds
                assert kind in (INSERT, REMOVE)
                if sc.structure == "heap" and kind == INSERT:
                    assert 0 <= priority < sc.n_priorities
                else:
                    assert priority == 0
            assert list(sc.churn) == sorted(sc.churn)

    def test_json_round_trip(self):
        for seed in (0, 5, 72):
            sc = Scenario.from_seed(seed)
            assert Scenario.from_json(sc.to_json()) == sc

    def test_net_runner_gains_the_crash_axis(self):
        from repro.testing.scenario import NET_HOSTS, NET_RUNNER

        crashed = 0
        for seed in range(25):
            sc = Scenario.from_seed(seed, runner=NET_RUNNER)
            assert sc.runner == NET_RUNNER
            assert sc.churn == ()  # host-level faults replace pid churn
            assert NET_HOSTS <= sc.n_processes <= 8
            for round_no, host in sc.crashes:
                assert 1 <= round_no < sc.n_rounds
                assert 0 <= host < NET_HOSTS
            assert len(sc.crashes) <= 1  # k=2 tolerates one crash
            crashed += bool(sc.crashes)
            assert Scenario.from_json(sc.to_json()) == sc
        assert crashed >= 5, "seed range produced too few crash scenarios"

    def test_sim_runners_never_draw_crashes(self):
        for seed in range(25):
            assert Scenario.from_seed(seed).crashes == ()

    def test_crashes_json_field_defaults_empty(self):
        # traces written before the crash axis existed must still load
        data = Scenario.from_seed(4).to_json()
        del data["crashes"]
        assert Scenario.from_json(data).crashes == ()


class TestRunScenario:
    @pytest.mark.parametrize("structure", STRUCTURES)
    @pytest.mark.parametrize("runner", RUNNERS)
    def test_healthy_protocol_passes(self, structure, runner):
        for seed in range(3):
            sc = Scenario.from_seed(seed, structure=structure, runner=runner)
            result = run_scenario(sc)
            assert not result.failed, result.violation
            assert result.submitted + result.skipped == len(sc.ops)
            assert len(result.records) >= result.submitted

    def test_churn_scenarios_settle(self):
        ran_churn = 0
        for seed in range(30):
            sc = Scenario.from_seed(seed, structure="queue", runner="sync")
            if not sc.churn:
                continue
            ran_churn += 1
            result = run_scenario(sc)
            assert not result.failed, (seed, result.violation)
            if ran_churn >= 4:
                break
        assert ran_churn >= 2, "seed range produced too few churn scenarios"

    def test_aborted_pids_submit_nothing_past_the_fault(self):
        base = Scenario.from_seed(11, structure="queue", runner="sync")
        target_pid = base.ops[0][1]
        faulty = base.with_(aborts=((0, target_pid),))
        result = run_scenario(faulty)
        assert not result.failed
        assert all(rec.pid != target_pid for rec in result.records)
        planned = sum(1 for op in base.ops if op[1] == target_pid)
        assert result.skipped >= planned

    def test_rerun_is_bit_identical(self):
        from repro.testing.scenario import history_digest

        sc = Scenario.from_seed(3, structure="heap", runner="async")
        first = run_scenario(sc)
        second = run_scenario(sc)
        assert history_digest(first.records) == history_digest(second.records)
