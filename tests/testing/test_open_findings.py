"""Open fuzzer findings: known liveness bugs, pinned but not yet fixed.

``tests/traces/open/`` holds traces the fuzzer recorded for bugs that
are **still open** (all liveness stalls in the membership/wave machinery
under adversarial schedules; found by the 1000-seed sweep that also
surfaced — and this PR fixed — the join-grant straggler):

* ``stall-wave-partition-after-leave`` — heap/sync: after a leave
  splice, most of the tree stays ``inflight`` on a pre-splice wave
  whose SERVEs never arrive, while the anchor's residual chain cycles
  empty waves;
* ``stall-leave-never-quiesces`` — stack/async: every request
  completes (``pending=0``) but a departing process never finishes the
  LEAVE choreography, so the cluster never settles;
* ``stall-stack-skew-delays`` — stack/async under adversarial skew
  delays, same non-quiescence family.

This test asserts each open trace **still reproduces** its stall — so
the reproducers cannot rot silently.  When a fix lands, the assertion
flips and fails with instructions: move the trace to ``tests/traces/``
(the regression corpus), where it guards the fix forever after.
"""

from pathlib import Path

import pytest

from repro.testing import load_trace, run_scenario

OPEN_DIR = Path(__file__).resolve().parents[1] / "traces" / "open"
OPEN_PATHS = sorted(OPEN_DIR.glob("*.json"))


def test_open_findings_exist():
    assert OPEN_PATHS, f"no open findings under {OPEN_DIR} — delete this module"


@pytest.mark.parametrize("path", OPEN_PATHS, ids=lambda p: p.stem)
def test_open_stall_still_reproduces(path):
    trace = load_trace(path)
    assert trace.violation.kind == "liveness"
    result = run_scenario(trace.scenario)
    assert result.failed and result.violation.kind == "liveness", (
        f"{path.name}: this open finding no longer reproduces — the bug "
        f"appears fixed. Promote the trace: `git mv tests/traces/open/"
        f"{path.name} tests/traces/` so the regression corpus "
        f"(test_trace_corpus.py) guards the fix from now on."
    )
