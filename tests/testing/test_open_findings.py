"""Liveness-family gate: the fuzzer corpus is fully green, nothing is open.

``tests/traces/open/`` used to hold traces for liveness stalls that were
pinned but not yet fixed; while it was non-empty the nightly sweep
triaged every new stall as KNOWN.  All three stalls are fixed and their
traces promoted into ``tests/traces/`` (the regression corpus, see
``test_trace_corpus.py`` for the generic corpus checks):

* ``stall-wave-partition-after-leave`` — heap/sync: a ``SLICE_REQ``
  raced the grant payload at a pending-joiner data holder, stranding a
  carved element while the carved receiver's GET parked forever;
* ``stall-leave-never-quiesces`` — stack/async: a responsible node's
  retried ``DEPART_REQ`` to a just-departed replacement was forwarded
  home by the zombie, poisoning the sender's own ``meta_sent``;
* ``stall-stack-skew-delays`` — stack/async under adversarial skew
  delays: the same zombie-echo poisoning reached through a passive
  epoch entry with joins in flight.

Closing the carve-out immediately earned its keep: the first un-carved
1000-seed sweep surfaced two further stalls whose ``(liveness,
stalled)`` signature the KNOWN triage had been absorbing — both fixed
and promoted here too:

* ``stall-passive-release-swallows-flood`` — queue/async, two
  concurrent joins: a passive epoch entrant released by its grace
  timer swallowed the ``UPDATE_OVER`` ring flood as a duplicate
  instead of relaying it, suspending the active node spliced between
  two such neighbours;
* ``stall-orbiting-route-after-leave`` — stack/sync, two leaves: a
  routed PUT orbited the cycle forever because the only eligible
  De Bruijn middle had a departed sibling and the detour never
  applied the wrap-relax, pinning the issuer's stage-4 barrier.

The ``--churn heavy`` sweep axis (added alongside the gate) surfaced
three more, likewise fixed and promoted:

* ``stall-grant-arrives-last`` — stack/async: an ``A_LEAVE_GRANT``
  delivered behind the whole departure choreography it authorised
  left a fully-departed node lingering (no zombie-exit re-check in
  the grant handler);
* ``stall-anchor-xfer-while-inflight`` — heap/async: ``ANCHOR_XFER``
  landing on a node whose own batch was riding a wave rooted at that
  very node deadlocked the cycle with everyone inflight and nobody
  waiting (so no NUDGE probe could originate);
* ``stall-acks-on-a-cyclic-wave`` — queue/async: the serve cascade of
  a transferred-anchor wave is not a tree, so the epoch's ACK_UP
  choreography waited on a served "child" that was actually the
  anchor itself.

This module asserts the gate stays closed: no open-findings directory
(new findings must either be fixed or explicitly parked with a tracking
entry in ROADMAP.md — currently one such parked finding, the rootless
wave after an anchor transfer amid total-ring churn), and the promoted
stall traces replay green.
"""

from pathlib import Path

import pytest

from repro.testing import load_trace, replay_trace

TRACES_DIR = Path(__file__).resolve().parents[1] / "traces"
OPEN_DIR = TRACES_DIR / "open"

PROMOTED = [
    "stall-wave-partition-after-leave",
    "stall-leave-never-quiesces",
    "stall-stack-skew-delays",
    "stall-passive-release-swallows-flood",
    "stall-orbiting-route-after-leave",
    "stall-grant-arrives-last",
    "stall-anchor-xfer-while-inflight",
    "stall-acks-on-a-cyclic-wave",
]


def test_no_open_findings():
    open_paths = sorted(OPEN_DIR.glob("*.json")) if OPEN_DIR.exists() else []
    assert not open_paths, (
        f"open liveness findings under {OPEN_DIR}: "
        f"{[p.name for p in open_paths]} — fix and promote them "
        f"(`git mv` into tests/traces/) before merging; the nightly "
        f"sweep no longer carries a KNOWN carve-out for this directory"
    )


@pytest.mark.parametrize("name", PROMOTED)
def test_promoted_stall_replays_green(name):
    path = TRACES_DIR / f"{name}.json"
    assert path.exists(), f"{name}.json left the regression corpus"
    trace = load_trace(path)
    assert trace.violation.kind == "liveness"
    report = replay_trace(trace)
    violation = report.result.violation
    assert violation is None, (
        f"{name}: the stall is back: "
        f"{violation.kind}/{violation.clause}: {violation.message}"
    )
