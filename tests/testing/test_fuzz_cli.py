"""The ``skueue-fuzz`` CLI: sweeps, artifacts, exit codes, replay."""

import json

import pytest

from repro.core.anchor import HeapAnchorState
from repro.testing.fuzz import fuzz_one, fuzz_sweep, main
from repro.testing.traces import load_trace

from tests.testing.test_shrink import _broken_heap_assign


class TestSweep:
    def test_healthy_sweep_is_clean(self, tmp_path):
        outcomes = fuzz_sweep(
            range(6), ("queue",), ("sync", "async"), out_dir=tmp_path
        )
        assert len(outcomes) == 12
        assert not any(outcome.failed for outcome in outcomes)
        assert list(tmp_path.iterdir()) == []  # no artifacts when clean

    def test_failing_cell_writes_a_shrunk_artifact(self, tmp_path, monkeypatch):
        monkeypatch.setattr(HeapAnchorState, "assign", _broken_heap_assign)
        outcome = None
        for seed in range(40):
            outcome = fuzz_one(seed, "heap", "sync", out_dir=tmp_path)
            if outcome.failed:
                break
        assert outcome is not None and outcome.failed
        assert outcome.clause is not None
        assert outcome.shrunk_ops is not None and outcome.shrunk_ops <= 15
        trace = load_trace(outcome.trace_path)
        assert trace.scenario.structure == "heap"
        assert trace.violation.clause == outcome.clause


class TestMain:
    def test_clean_run_exits_zero(self, tmp_path, capsys):
        code = main([
            "--seeds", "3", "--structure", "queue", "--runner", "sync",
            "--out", str(tmp_path),
        ])
        assert code == 0
        out = capsys.readouterr().out
        assert "0 failing" in out

    def test_run_subcommand_is_the_default(self, tmp_path):
        assert main([
            "run", "--seeds", "2", "--structure", "stack", "--runner", "sync",
            "--out", str(tmp_path),
        ]) == 0

    def test_failing_run_exits_nonzero_and_replay_reproduces(
        self, tmp_path, capsys, monkeypatch
    ):
        monkeypatch.setattr(HeapAnchorState, "assign", _broken_heap_assign)
        code = main([
            "--seeds", "10", "--structure", "heap", "--runner", "sync",
            "--out", str(tmp_path),
        ])
        assert code == 1
        artifacts = sorted(tmp_path.glob("trace-*.json"))
        assert artifacts
        capsys.readouterr()
        # the replay subcommand reproduces the artifact (still mutated)
        assert main(["replay", str(artifacts[0])]) == 0
        report = json.loads(capsys.readouterr().out)
        assert report["reproduced"] is True

    def test_replay_flags_a_vanished_bug(self, tmp_path, capsys, monkeypatch):
        with monkeypatch.context() as patched:
            patched.setattr(HeapAnchorState, "assign", _broken_heap_assign)
            code = main([
                "--seeds", "10", "--structure", "heap", "--runner", "sync",
                "--out", str(tmp_path),
            ])
            assert code == 1
        artifact = sorted(tmp_path.glob("trace-*.json"))[0]
        capsys.readouterr()
        # mutation gone (healthy checkout): the trace no longer reproduces
        assert main(["replay", str(artifact)]) == 1
        report = json.loads(capsys.readouterr().out)
        assert report["reproduced"] is False

    def test_unknown_axis_rejected(self):
        with pytest.raises(SystemExit):
            main(["--structure", "deque"])

    def test_unknown_churn_profile_rejected(self):
        with pytest.raises(SystemExit):
            main(["--churn", "ludicrous"])

    def test_replay_truncated_artifact_exits_with_diagnostic(
        self, tmp_path, capsys, monkeypatch
    ):
        """A cut-off download must produce a one-line diagnostic, not a
        JSONDecodeError traceback."""
        with monkeypatch.context() as patched:
            patched.setattr(HeapAnchorState, "assign", _broken_heap_assign)
            assert main(["--seeds", "10", "--structure", "heap",
                         "--runner", "sync", "--out", str(tmp_path)]) == 1
        artifact = sorted(tmp_path.glob("trace-*.json"))[0]
        artifact.write_text(artifact.read_text()[: artifact.stat().st_size // 2])
        capsys.readouterr()
        assert main(["replay", str(artifact)]) == 2
        err = capsys.readouterr().err
        assert "not valid JSON" in err and "truncated" in err

    def test_replay_digest_mismatch_exits_with_diagnostic(
        self, tmp_path, capsys, monkeypatch
    ):
        """An artifact whose history was edited after recording is file
        damage, not a protocol regression — say so and exit non-zero."""
        with monkeypatch.context() as patched:
            patched.setattr(HeapAnchorState, "assign", _broken_heap_assign)
            assert main(["--seeds", "10", "--structure", "heap",
                         "--runner", "sync", "--out", str(tmp_path)]) == 1
        artifact = sorted(tmp_path.glob("trace-*.json"))[0]
        data = json.loads(artifact.read_text())
        data["history"] = data["history"][:-1]
        artifact.write_text(json.dumps(data))
        capsys.readouterr()
        assert main(["replay", str(artifact)]) == 2
        err = capsys.readouterr().err
        assert "digest" in err and "corrupted" in err

    def test_known_dir_triages_documented_families(
        self, tmp_path, capsys, monkeypatch
    ):
        """Failures matching an open finding's (kind, clause) signature
        are reported as KNOWN and do not fail the sweep."""
        monkeypatch.setattr(HeapAnchorState, "assign", _broken_heap_assign)
        out = tmp_path / "artifacts"
        # without a known-dir the mutation fails the sweep...
        assert main(["--seeds", "10", "--structure", "heap",
                     "--runner", "sync", "--out", str(out)]) == 1
        capsys.readouterr()
        # ...with a known-dir holding a matching signature it is triaged
        known = tmp_path / "known"
        known.mkdir()
        artifact = sorted(out.glob("trace-*.json"))[0]
        artifact.rename(known / artifact.name)
        assert main(["--seeds", "10", "--structure", "heap",
                     "--runner", "sync", "--out", str(out),
                     "--known-dir", str(known)]) == 0
        stdout = capsys.readouterr().out
        assert "KNOWN seed=" in stdout
        assert "known-open" in stdout


@pytest.mark.slow
def test_parallel_workers_match_in_process_results(tmp_path):
    serial = fuzz_sweep(range(4), ("queue",), ("sync",), out_dir=None)
    parallel = fuzz_sweep(range(4), ("queue",), ("sync",), out_dir=None,
                          workers=2)
    assert [o.__dict__ for o in serial] == [o.__dict__ for o in parallel]
