"""Regression corpus: checked-in shrunk traces replayed in tier-1.

Each artifact under ``tests/traces/`` was recorded by the fuzzer against
a build where the scenario *failed* (see each trace's ``violation``),
then shrunk to a minimal reproducer:

* ``liveness-join-grant-straggler.json`` — heap/async, seed 72: a
  ``JOIN_GRANT`` straggling behind the splice left routed PUTs in the
  joiner's pre-grant buffer forever (fixed in this PR by draining the
  buffer at integration);
* ``consistency-heap-wrong-class.json`` — heap anchor mutated to drain
  priority classes top-down (property 3);
* ``consistency-queue-rank-overlap.json`` — queue anchor mutated to
  hand out overlapping value ranks (property 2);
* ``stall-*.json`` — the liveness stalls promoted when their fixes
  landed: the three from ``tests/traces/open/`` (carve-race and
  zombie-echo META poisoning), the two the un-carved 1000-seed sweep
  then exposed (a released passive entrant swallowing the
  ``UPDATE_OVER`` flood, and a routed PUT orbiting the cycle when the
  only eligible De Bruijn middle lost its sibling), and the three the
  ``--churn heavy`` axis surfaced (a LEAVE grant delivered behind its
  own departure choreography, an ``ANCHOR_XFER`` landing on an
  inflight node, and the cyclic-serve ACK deadlock that consume
  enables; see test_open_findings.py and the "Wave liveness across
  splices" catalog in DESIGN.md).

On a healthy checkout the recorded violation must be *gone*: replaying
the exact scenario under the exact recorded schedule settles and
verifies.  A reappearing violation means the bug the trace pinned down
is back.
"""

from pathlib import Path

import pytest

from repro.testing import load_trace, replay_trace
from repro.testing.scenario import history_digest, run_scenario

TRACES_DIR = Path(__file__).resolve().parents[1] / "traces"
TRACE_PATHS = sorted(TRACES_DIR.glob("*.json"))


def test_corpus_is_present():
    assert len(TRACE_PATHS) >= 3, f"regression corpus missing in {TRACES_DIR}"


@pytest.mark.parametrize("path", TRACE_PATHS, ids=lambda p: p.stem)
def test_recorded_failure_stays_dead(path):
    trace = load_trace(path)
    assert trace.violation.kind in ("consistency", "liveness", "crash")
    assert len(trace.scenario.ops) <= 32, "corpus traces should be shrunk"
    report = replay_trace(trace)
    violation = report.result.violation
    assert violation is None, (
        f"{path.name}: the recorded bug is back: "
        f"{violation.kind}/{violation.clause}: {violation.message}"
    )


@pytest.mark.parametrize("path", TRACE_PATHS, ids=lambda p: p.stem)
def test_corpus_replays_deterministically(path):
    """Two replays of the same trace produce identical histories."""
    trace = load_trace(path)
    first = replay_trace(trace)
    second = replay_trace(trace)
    assert history_digest(first.result.records) == history_digest(
        second.result.records
    )


def test_corpus_scenarios_also_pass_without_the_recorded_schedule():
    """The scenarios stay green under their seed-derived schedules too."""
    for path in TRACE_PATHS:
        trace = load_trace(path)
        result = run_scenario(trace.scenario)
        assert not result.failed, (path.name, result.violation)
