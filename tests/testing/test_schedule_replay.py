"""The replay guarantee: any recorded schedule replays bit-identically.

The property quantifies over seeds (hence scenarios: structure, runner,
delay policy, op/churn/abort scripts all derive from the seed):

* recording is non-invasive — a run under a ``ScheduleRecorder`` equals
  the plain run byte-for-byte;
* replaying the recorded trace reproduces the identical history
  byte-for-byte, with zero off-trace decisions.
"""

from hypothesis import given, settings, strategies as st

from repro.testing import (
    Scenario,
    ScheduleRecorder,
    ScheduleReplayer,
    ScheduleTrace,
    run_scenario,
)
from repro.testing.scenario import serialize_history


def _record_and_replay(scenario):
    recorder = ScheduleRecorder()
    recorded = run_scenario(scenario, schedule_hint=recorder)
    replayer = ScheduleReplayer(recorder.trace)
    replayed = run_scenario(scenario, schedule_hint=replayer)
    return recorded, replayed, recorder, replayer


@settings(max_examples=12, deadline=None)
@given(seed=st.integers(min_value=0, max_value=2**64 - 1))
def test_sync_schedules_replay_byte_for_byte(seed):
    scenario = Scenario.from_seed(seed, runner="sync")
    recorded, replayed, recorder, replayer = _record_and_replay(scenario)
    assert serialize_history(recorded.records) == serialize_history(
        replayed.records
    )
    assert replayer.exhausted == 0
    # recording changed nothing
    plain = run_scenario(scenario)
    assert serialize_history(plain.records) == serialize_history(
        recorded.records
    )


@settings(max_examples=12, deadline=None)
@given(seed=st.integers(min_value=0, max_value=2**64 - 1))
def test_async_schedules_replay_byte_for_byte(seed):
    scenario = Scenario.from_seed(seed, runner="async")
    recorded, replayed, recorder, replayer = _record_and_replay(scenario)
    assert serialize_history(recorded.records) == serialize_history(
        replayed.records
    )
    assert replayer.exhausted == 0
    assert len(recorder.trace.async_delays) > 0
    plain = run_scenario(scenario)
    assert serialize_history(plain.records) == serialize_history(
        recorded.records
    )


def test_trace_json_round_trip():
    scenario = Scenario.from_seed(9, runner="async")
    recorder = ScheduleRecorder()
    run_scenario(scenario, schedule_hint=recorder)
    trace = recorder.trace
    restored = ScheduleTrace.from_json(trace.to_json())
    assert restored.sync_orders == trace.sync_orders
    assert restored.async_delays == trace.async_delays

    scenario_sync = Scenario.from_seed(9, runner="sync")
    recorder_sync = ScheduleRecorder()
    run_scenario(scenario_sync, schedule_hint=recorder_sync)
    restored_sync = ScheduleTrace.from_json(recorder_sync.trace.to_json())
    assert restored_sync.sync_orders == recorder_sync.trace.sync_orders


def test_replayer_falls_back_deterministically_off_trace():
    """A diverged replay (shrunk scenario, stale trace) still finishes,
    counting its off-trace decisions instead of crashing."""
    scenario = Scenario.from_seed(4, runner="async")
    recorder = ScheduleRecorder()
    run_scenario(scenario, schedule_hint=recorder)
    # halve the trace: the replayed run must draw the rest live
    trace = recorder.trace
    trace.async_delays = trace.async_delays[: len(trace.async_delays) // 2]
    replayer = ScheduleReplayer(trace)
    result = run_scenario(scenario, schedule_hint=replayer)
    assert not result.failed
    assert replayer.exhausted > 0
