"""Property-based tests: batch algebra and anchor/decomposer invariants."""

from hypothesis import given
from hypothesis import strategies as st

from repro.core.anchor import QueueAnchorState, StackAnchorState
from repro.core.batch import Batch, combine_runs
from repro.core.decompose import QueueDecomposer, StackDecomposer
from repro.core.requests import INSERT, REMOVE

kinds = st.lists(st.sampled_from([INSERT, REMOVE]), max_size=40)
runs_lists = st.lists(st.integers(min_value=0, max_value=20), max_size=8)


@given(kinds)
def test_batch_encodes_sequence(sequence):
    batch = Batch()
    for kind in sequence:
        batch.add(kind)
    # run-length decode reproduces the sequence
    decoded = []
    for i, count in enumerate(batch.runs):
        decoded.extend([INSERT if i % 2 == 0 else REMOVE] * count)
    assert decoded == sequence
    assert batch.total_ops == len(sequence)
    # runs after the (possibly zero) first one are strictly positive
    assert all(c > 0 for c in batch.runs[1:])


@given(runs_lists, runs_lists, runs_lists)
def test_combine_associative(a, b, c):
    left = list(a)
    combine_runs(left, b)
    combine_runs(left, c)
    bc = list(b)
    combine_runs(bc, c)
    right = list(a)
    combine_runs(right, bc)
    assert left == right


@given(runs_lists, runs_lists)
def test_combine_commutative(a, b):
    ab = list(a)
    combine_runs(ab, b)
    ba = list(b)
    combine_runs(ba, a)
    assert ab == ba


@given(st.lists(st.integers(min_value=0, max_value=30), min_size=1, max_size=10))
def test_queue_anchor_invariant_and_sizes(runs):
    state = QueueAnchorState()
    before = state.counter
    assigns = state.assign(runs)
    assert state.first <= state.last + 1
    assert len(assigns) == len(runs)
    # values cover exactly sum(runs) ranks
    assert state.counter - before == sum(runs)
    # insert intervals have exactly their run length; removals at most
    for i, (lo, hi, _value) in enumerate(assigns):
        size = hi - lo + 1
        if i % 2 == 0:
            assert size == runs[i]
        else:
            assert 0 <= size <= runs[i]


@given(
    st.lists(
        st.lists(st.integers(min_value=0, max_value=9), min_size=0, max_size=4),
        min_size=1,
        max_size=6,
    )
)
def test_queue_decompose_partitions_assignments(subs):
    combined: list[int] = []
    for runs in subs:
        combine_runs(combined, runs)
    state = QueueAnchorState()
    state.assign([40])  # preload 40 elements so removals mostly succeed
    assigns = state.assign(combined)
    dec = QueueDecomposer(assigns)
    taken = [dec.take(runs) for runs in subs]

    for run_index in range(len(combined)):
        lo, hi, value = assigns[run_index]
        positions: list[int] = []
        values: list[int] = []
        for sub_index, runs in enumerate(subs):
            if run_index >= len(runs):
                continue
            s_lo, s_hi, s_value = taken[sub_index][run_index]
            positions.extend(range(s_lo, s_hi + 1))
            values.extend(range(s_value, s_value + runs[run_index]))
        # positions: each sub-run gets a consecutive, disjoint, in-order
        # share of the parent interval
        assert positions == list(range(lo, min(hi, lo + len(positions) - 1) + 1)) or (
            not positions and hi < lo
        )
        # values: exactly one rank per request, in combination order
        assert values == list(range(value, value + sum(
            runs[run_index] for runs in subs if run_index < len(runs)
        )))


@given(
    st.integers(min_value=0, max_value=30),
    st.lists(
        st.tuples(
            st.integers(min_value=0, max_value=6),
            st.integers(min_value=0, max_value=6),
        ),
        min_size=1,
        max_size=5,
    ),
)
def test_stack_decompose_tickets_follow_positions(preload, subs):
    state = StackAnchorState()
    state.assign([0, preload])
    pops = sum(a for a, _ in subs)
    pushes = sum(b for _, b in subs)
    assigns = state.assign([pops, pushes])
    dec = StackDecomposer(assigns)
    seen_pop_positions: list[int] = []
    seen_push = []
    for a, b in subs:
        (plo, phi, _pv, pt_hi), (qlo, qhi, _qv, qt_lo) = dec.take([a, b])
        if phi >= plo:
            # pop tickets decrease with position: ticket(pos) = pt_hi-(phi-pos)
            seen_pop_positions.extend(range(phi, plo - 1, -1))
            assert pt_hi <= state.ticket
        if b:
            assert qhi - qlo + 1 == b
            seen_push.append((qlo, qt_lo))
    # pops took descending positions from the top without overlap
    assert seen_pop_positions == sorted(seen_pop_positions, reverse=True)
    assert len(set(seen_pop_positions)) == len(seen_pop_positions)
    assert len(seen_pop_positions) == min(pops, preload)
    # pushes partition [preload - served_pops + 1, ...] consecutively
    starts = [lo for lo, _ in seen_push]
    assert starts == sorted(starts)
