"""Property-based tests: Skeap batch shape and interval arithmetic.

The load-bearing invariant is the anchor/decomposer pairing: however a
combined batch is split into sub-batches (own requests first, then
children in combination order), the per-sub-batch shares must partition
the anchor's assignment *exactly* — every ``(priority, position)`` slot
handed out once, every value rank handed out once, removals drained
lowest-class-first both globally and within each share.
"""

from __future__ import annotations

from hypothesis import given
from hypothesis import strategies as st

from repro.core.anchor import HeapAnchorState
from repro.core.batch import combine_runs
from repro.core.decompose import HeapDecomposer

# a heap batch for <= 4 priority classes: [removes, ins_0, ..., ins_3]
heap_runs = st.lists(
    st.integers(min_value=0, max_value=12), min_size=5, max_size=5
)
# several waves of several sub-batches each
sub_batches = st.lists(heap_runs, min_size=1, max_size=6)
waves = st.lists(sub_batches, min_size=1, max_size=4)


def _positions(segments) -> list[tuple[int, int]]:
    return [
        (priority, position)
        for priority, lo, hi in segments
        for position in range(lo, hi + 1)
    ]


@given(waves)
def test_decomposition_partitions_the_anchor_assignment(waves):
    state = HeapAnchorState(4)
    stored: dict[int, int] = {p: 0 for p in range(4)}  # reference sizes
    for subs in waves:
        combined: list[int] = []
        for runs in subs:
            combine_runs(combined, runs)
        value_before = state.counter
        assigns = state.assign(combined)
        (_rem_value, segments), *ins_assigns = assigns

        # the anchor serves min(removes, stored) removals, lowest class
        # first, and never reuses a position
        removes = combined[0]
        served = _positions(segments)
        assert len(served) == min(removes, sum(stored.values()))
        assert served == sorted(served)  # ascending (priority, position)
        drained = dict(stored)
        for priority, _pos in served:
            assert all(drained[q] == 0 for q in range(priority)), (
                "a higher class served while a lower one held elements"
            )
            drained[priority] -= 1
            assert drained[priority] >= 0

        # value ranks cover exactly the combined batch, run by run
        assert state.counter - value_before == sum(combined)

        # the decomposer hands every sub-batch its exact share
        decomposer = HeapDecomposer(assigns)
        all_served: list[tuple[int, int]] = []
        value_ranks: list[int] = []
        for runs in subs:
            share = decomposer.take(runs)
            if not runs:
                assert share == ()
                continue
            (share_value, share_segments), *share_ins = share
            share_positions = _positions(share_segments)
            assert len(share_positions) <= runs[0]
            all_served.extend(share_positions)
            value_ranks.extend(range(share_value, share_value + runs[0]))
            for priority, (lo, hi, value) in enumerate(share_ins):
                count = runs[priority + 1]
                assert hi - lo + 1 == count
                value_ranks.extend(range(value, value + count))

        # shares partition the wave: same positions, same order, and the
        # value ranks tile [value_before, state.counter) with no overlap
        assert all_served == served
        assert sorted(value_ranks) == list(
            range(value_before, state.counter)
        )

        for priority in range(4):
            stored[priority] = drained[priority] + combined[priority + 1]
        assert {
            p: state.class_size(p) for p in range(4)
        } == stored


@given(sub_batches)
def test_share_segments_respect_class_order(subs):
    state = HeapAnchorState(4)
    state.assign([0, 5, 5, 5, 5])  # preload every class
    combined: list[int] = []
    for runs in subs:
        combine_runs(combined, runs)
    decomposer = HeapDecomposer(state.assign(combined))
    previous_end: tuple[int, int] | None = None
    for runs in subs:
        share = decomposer.take(runs)
        if not runs:
            continue
        positions = _positions(share[0][1])
        assert positions == sorted(positions)
        if positions:
            if previous_end is not None:
                # consecutive shares consume the remove run in order
                assert positions[0] > previous_end
            previous_end = positions[-1]


@given(heap_runs)
def test_single_share_reproduces_the_whole_assignment(runs):
    state = HeapAnchorState(4)
    state.assign([0, 3, 0, 2, 1])
    assigns = state.assign(list(runs))
    share = HeapDecomposer(assigns).take(runs)
    assert share == tuple(assigns)
