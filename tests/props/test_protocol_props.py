"""Property-based end-to-end tests: random executions satisfy Definition 1.

These are the highest-value tests in the suite: hypothesis generates
arbitrary small workloads (and delivery schedules, via the seed), the
cluster executes them, and the checker verifies the full history.
"""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.cluster import SkackCluster, SkueueCluster
from repro.core.requests import BOTTOM
from repro.sim.delays import ExponentialDelay, UniformDelay
from repro.verify import check_queue_history, check_stack_history

# a program: per-step (pid, is_insert, gap_rounds)
programs = st.lists(
    st.tuples(
        st.integers(min_value=0, max_value=5),
        st.booleans(),
        st.integers(min_value=0, max_value=3),
    ),
    max_size=30,
)


@given(programs, st.integers(min_value=0, max_value=10_000))
@settings(max_examples=25, deadline=None)
def test_queue_sync_random_programs(program, seed):
    cluster = SkueueCluster(n_processes=6, seed=seed)
    for i, (pid, is_insert, gap) in enumerate(program):
        if is_insert:
            cluster.enqueue(pid, f"item-{i}")
        else:
            cluster.dequeue(pid)
        cluster.step(gap)
    cluster.run_until_done(60_000)
    check_queue_history(cluster.records)


@given(programs, st.integers(min_value=0, max_value=10_000))
@settings(max_examples=25, deadline=None)
def test_stack_sync_random_programs(program, seed):
    cluster = SkackCluster(n_processes=6, seed=seed)
    for i, (pid, is_insert, gap) in enumerate(program):
        if is_insert:
            cluster.push(pid, f"item-{i}")
        else:
            cluster.pop(pid)
        cluster.step(gap)
    cluster.run_until_done(60_000)
    check_stack_history(cluster.records)


@given(programs, st.integers(min_value=0, max_value=10_000))
@settings(max_examples=12, deadline=None)
def test_queue_async_adversarial(program, seed):
    cluster = SkueueCluster(
        n_processes=5,
        seed=seed,
        runner="async",
        delay_policy=UniformDelay(0.2, 4.0),
    )
    for i, (pid, is_insert, gap) in enumerate(program):
        pid = pid % 5
        if is_insert:
            cluster.enqueue(pid, f"item-{i}")
        else:
            cluster.dequeue(pid)
        cluster.step(gap)
    cluster.run_until_done()
    check_queue_history(cluster.records)


@given(programs, st.integers(min_value=0, max_value=10_000))
@settings(max_examples=12, deadline=None)
def test_stack_async_adversarial(program, seed):
    cluster = SkackCluster(
        n_processes=5,
        seed=seed,
        runner="async",
        delay_policy=ExponentialDelay(1.2),
    )
    for i, (pid, is_insert, gap) in enumerate(program):
        pid = pid % 5
        if is_insert:
            cluster.push(pid, f"item-{i}")
        else:
            cluster.pop(pid)
        cluster.step(gap)
    cluster.run_until_done()
    check_stack_history(cluster.records)


@given(
    st.lists(st.booleans(), min_size=1, max_size=20),
    st.integers(min_value=0, max_value=1000),
)
@settings(max_examples=20, deadline=None)
def test_single_process_queue_matches_sequential(ops, seed):
    """With one request source, the distributed queue IS a queue."""
    from repro.baselines.reference import SequentialQueue

    cluster = SkueueCluster(n_processes=4, seed=seed)
    reference = SequentialQueue()
    handles = []
    expected = []
    for i, is_insert in enumerate(ops):
        if is_insert:
            cluster.enqueue(0, f"v{i}")
            reference.enqueue(f"v{i}")
        else:
            handles.append(cluster.dequeue(0))
            expected.append(reference.dequeue())
        # fully quiesce between ops: strict sequential semantics
        cluster.run_until_done(60_000)
    for handle, want in zip(handles, expected):
        got = cluster.result_of(handle)
        assert got == want or (got is BOTTOM and want is BOTTOM)
