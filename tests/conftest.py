"""Shared fixtures and helpers for the Skueue test suite."""

from __future__ import annotations

import random

import pytest

from repro.core.cluster import SkackCluster, SkeapCluster, SkueueCluster
from repro.core.structures import get_structure


def drive_random(
    cluster,
    rounds: int,
    op_probability: float = 0.3,
    insert_probability: float = 0.5,
    seed: int = 0,
    join_probability: float = 0.0,
    leave_probability: float = 0.0,
):
    """Random mixed workload with optional churn; returns the rng used."""
    rng = random.Random(f"drive-{seed}")
    for r in range(rounds):
        if join_probability and rng.random() < join_probability:
            cluster.join()
        if leave_probability and rng.random() < leave_probability:
            candidates = sorted(cluster.live_pids - cluster.leaving_pids)
            if candidates:
                pid = rng.choice(candidates)
                if cluster.can_leave(pid, margin=2):
                    cluster.leave(pid)
        if rng.random() < op_probability:
            pid = rng.choice(sorted(cluster.live_pids - cluster.leaving_pids))
            if cluster.can_submit(pid):
                if rng.random() < insert_probability:
                    cluster._inject(pid, 0, f"item-{r}")
                else:
                    cluster._inject(pid, 1, None)
        cluster.step()
    return rng


def run_uniform_workload(session, ops: int = 40, seed: int = 0):
    """One workload script for *every* backend of the handle API.

    Mixed enqueues/dequeues via handles, batch submission, drain, and a
    Definition-1 check over the collected history.  Returns
    ``(handles, records)``.  Used unmodified against sync, async, and
    tcp sessions — that portability is itself the property under test.
    """
    rng = random.Random(f"uniform-{seed}")
    handles = []
    enqueued = 0
    for i in range(ops // 2):
        if rng.random() < 0.6 or enqueued == 0:
            handles.append(session.enqueue(f"item-{i}"))
            enqueued += 1
        else:
            handles.append(session.dequeue())
    # second half as one pipelined batch
    batch = []
    for i in range(ops // 2, ops):
        if rng.random() < 0.6:
            batch.append(("enqueue", f"item-{i}"))
            enqueued += 1
        else:
            batch.append(("dequeue",))
    handles.extend(session.submit_batch(batch))
    session.drain()
    assert all(handle.done() for handle in handles)
    for handle in handles:
        result = handle.result()
        assert result is not None
        assert session.result_of(handle.req_id) == result
    records = session.verify()
    assert len(records) >= len(handles)
    return handles, records


def run_priority_workload(session, ops: int = 40, seed: int = 0,
                          n_priorities: int = 3):
    """One mixed-priority heap workload for *every* backend.

    The acceptance scenario of the Skeap PR: inserts spread over
    priority classes, interleaved delete-mins, a pipelined batch tail, a
    drain, and the Definition-1 priority check over the collected
    history — run unmodified against sync, async and tcp sessions.
    Returns ``(handles, records)``.
    """
    rng = random.Random(f"priority-{seed}")
    handles = []
    inserted = 0
    for i in range(ops // 2):
        if rng.random() < 0.6 or inserted == 0:
            handles.append(
                session.insert(f"job-{i}", priority=rng.randrange(n_priorities))
            )
            inserted += 1
        else:
            handles.append(session.delete_min())
    # second half as one pipelined batch
    batch = []
    for i in range(ops // 2, ops):
        if rng.random() < 0.6:
            batch.append(
                ("insert", f"job-{i}", None, rng.randrange(n_priorities))
            )
            inserted += 1
        else:
            batch.append(("delete_min",))
    handles.extend(session.submit_batch(batch))
    session.drain()
    assert all(handle.done() for handle in handles)
    for handle in handles:
        result = handle.result()
        assert result is not None
        assert session.result_of(handle.req_id) == result
    records = session.verify()
    assert len(records) >= len(handles)
    return handles, records


def verify(cluster) -> None:
    """Check the full history against Definition 1."""
    get_structure(cluster.structure).check_history(cluster.records)


def assert_topology_invariants(cluster) -> None:
    """Ring closure, sortedness, unique anchor at the global minimum."""
    cycle = cluster.cycle_vids()
    actors = cluster.runtime.actors
    labels = [actors[v].label for v in cycle]
    anchor_vid = cluster.anchor.vid
    assert cycle[0] == anchor_vid
    assert labels == sorted(labels), "cycle is not sorted by label"
    # pred/succ pointers are mutually consistent
    for v in cycle:
        node = actors[v]
        assert actors[node.succ_vid].pred_vid == v
    # anchor is the global minimum label
    assert anchor_vid == min(cycle, key=lambda v: actors[v].label)


@pytest.fixture
def small_queue():
    with SkueueCluster(n_processes=8, seed=42) as cluster:
        yield cluster


@pytest.fixture
def small_stack():
    with SkackCluster(n_processes=8, seed=42) as cluster:
        yield cluster


@pytest.fixture
def small_heap():
    with SkeapCluster(n_processes=8, seed=42, n_priorities=3) as cluster:
        yield cluster
