"""Shared fixtures and helpers for the Skueue test suite."""

from __future__ import annotations

import random

import pytest

from repro.core.cluster import SkackCluster, SkueueCluster
from repro.verify import check_queue_history, check_stack_history


def drive_random(
    cluster,
    rounds: int,
    op_probability: float = 0.3,
    insert_probability: float = 0.5,
    seed: int = 0,
    join_probability: float = 0.0,
    leave_probability: float = 0.0,
):
    """Random mixed workload with optional churn; returns the rng used."""
    rng = random.Random(f"drive-{seed}")
    for r in range(rounds):
        if join_probability and rng.random() < join_probability:
            cluster.join()
        if leave_probability and rng.random() < leave_probability:
            candidates = sorted(cluster.live_pids - cluster.leaving_pids)
            if len(candidates) > 3:
                cluster.leave(rng.choice(candidates))
        if rng.random() < op_probability:
            pid = rng.choice(sorted(cluster.live_pids - cluster.leaving_pids))
            if rng.random() < insert_probability:
                cluster._inject(pid, 0, f"item-{r}")
            else:
                cluster._inject(pid, 1, None)
        cluster.step()
    return rng


def verify(cluster) -> None:
    """Check the full history against Definition 1."""
    if isinstance(cluster, SkackCluster):
        check_stack_history(cluster.records)
    else:
        check_queue_history(cluster.records)


def assert_topology_invariants(cluster) -> None:
    """Ring closure, sortedness, unique anchor at the global minimum."""
    cycle = cluster.cycle_vids()
    actors = cluster.runtime.actors
    labels = [actors[v].label for v in cycle]
    anchor_vid = cluster.anchor.vid
    assert cycle[0] == anchor_vid
    assert labels == sorted(labels), "cycle is not sorted by label"
    # pred/succ pointers are mutually consistent
    for v in cycle:
        node = actors[v]
        assert actors[node.succ_vid].pred_vid == v
    # anchor is the global minimum label
    assert anchor_vid == min(cycle, key=lambda v: actors[v].label)


@pytest.fixture
def small_queue():
    with SkueueCluster(n_processes=8, seed=42) as cluster:
        yield cluster


@pytest.fixture
def small_stack():
    with SkackCluster(n_processes=8, seed=42) as cluster:
        yield cluster
